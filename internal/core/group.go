package core

import (
	"fmt"
	"io"
)

// LenUnknown is returned by Views.Len when the number of views is not
// known in advance or is infinite.
const LenUnknown = -1

// ViewIter iterates over a sequence of resource views. Next returns
// io.EOF after the final view. Iterators over infinite collections never
// return io.EOF.
type ViewIter interface {
	Next() (ResourceView, error)
}

// Views is a finite or infinite collection of resource views — the common
// shape of both the set S and the sequence Q of a group component. Each
// call to Iter starts a fresh iteration (for stateless collections; true
// one-shot streams document that a second Iter observes later elements,
// cf. Option 2 in §4.4.1 of the paper).
type Views interface {
	Iter() ViewIter
	// Finite reports whether the collection is finite.
	Finite() bool
	// Len returns the number of views, or LenUnknown.
	Len() int
}

// sliceIter iterates over an in-memory slice.
type sliceIter struct {
	views []ResourceView
	pos   int
}

func (it *sliceIter) Next() (ResourceView, error) {
	if it.pos >= len(it.views) {
		return nil, io.EOF
	}
	v := it.views[it.pos]
	it.pos++
	return v, nil
}

// sliceViews is a finite extensional collection.
type sliceViews struct{ views []ResourceView }

func (s sliceViews) Iter() ViewIter { return &sliceIter{views: s.views} }
func (s sliceViews) Finite() bool   { return true }
func (s sliceViews) Len() int       { return len(s.views) }

// SliceViews wraps views as a finite collection. The slice is not copied.
func SliceViews(views ...ResourceView) Views { return sliceViews{views} }

// NoViews returns the empty collection (∅ or ⟨⟩).
func NoViews() Views { return sliceViews{} }

// funcViews defers iteration to a generator; used for intensional and
// infinite collections such as data streams.
type funcViews struct {
	iter   func() ViewIter
	finite bool
	length int
}

func (f funcViews) Iter() ViewIter { return f.iter() }
func (f funcViews) Finite() bool   { return f.finite }
func (f funcViews) Len() int       { return f.length }

// FuncViews builds a collection whose iteration is produced by iter on
// every access. Pass LenUnknown when the length is not known.
func FuncViews(iter func() ViewIter, finite bool, length int) Views {
	return funcViews{iter: iter, finite: finite, length: length}
}

// IterFunc adapts a plain function to a ViewIter.
type IterFunc func() (ResourceView, error)

// Next implements ViewIter.
func (f IterFunc) Next() (ResourceView, error) { return f() }

// Group is the γ component of a resource view: a 2-tuple (S, Q) of a
// possibly empty, possibly infinite set S and ordered sequence Q of
// resource views. S holds connections whose relative order does not
// matter; Q holds ordered connections. Definition 1 requires S and Q to
// be disjoint; CheckGroupInvariant verifies this for finite groups.
type Group struct {
	Set Views
	Seq Views
}

// EmptyGroup returns the empty group component (∅, ⟨⟩).
func EmptyGroup() Group { return Group{Set: NoViews(), Seq: NoViews()} }

// SetGroup returns a group whose connections are all unordered.
func SetGroup(views ...ResourceView) Group {
	return Group{Set: SliceViews(views...), Seq: NoViews()}
}

// SeqGroup returns a group whose connections are all ordered.
func SeqGroup(views ...ResourceView) Group {
	return Group{Set: NoViews(), Seq: SliceViews(views...)}
}

// IsEmpty reports whether both S and Q are known to be empty.
func (g Group) IsEmpty() bool {
	return viewsEmpty(g.Set) && viewsEmpty(g.Seq)
}

func viewsEmpty(v Views) bool {
	return v == nil || (v.Finite() && v.Len() == 0)
}

// Iter iterates over all directly related views: first the set S, then
// the sequence Q.
func (g Group) Iter() ViewIter {
	iters := make([]ViewIter, 0, 2)
	if g.Set != nil {
		iters = append(iters, g.Set.Iter())
	}
	if g.Seq != nil {
		iters = append(iters, g.Seq.Iter())
	}
	return &chainIter{iters: iters}
}

type chainIter struct {
	iters []ViewIter
	pos   int
}

func (c *chainIter) Next() (ResourceView, error) {
	for c.pos < len(c.iters) {
		v, err := c.iters[c.pos].Next()
		if err == io.EOF {
			c.pos++
			continue
		}
		return v, err
	}
	return nil, io.EOF
}

// CollectViews drains an iterator into a slice, reading at most max views
// (a guard against infinite collections); max <= 0 means no limit and
// must only be used on collections known to be finite.
func CollectViews(v Views, max int) ([]ResourceView, error) {
	if v == nil {
		return nil, nil
	}
	return CollectIter(v.Iter(), max)
}

// CollectIter drains it into a slice, reading at most max views; max <= 0
// means no limit.
func CollectIter(it ViewIter, max int) ([]ResourceView, error) {
	var out []ResourceView
	for {
		if max > 0 && len(out) >= max {
			return out, nil
		}
		v, err := it.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
}

// CheckGroupInvariant verifies condition (ii) of Definition 1: the set S
// and the sequence Q of a group component are disjoint. Views compare by
// identity. For infinite collections only the first probe views of each
// side are examined; probe <= 0 applies a default of 1024.
func CheckGroupInvariant(g Group, probe int) error {
	if probe <= 0 {
		probe = 1024
	}
	limS, limQ := 0, 0
	if g.Set != nil && !g.Set.Finite() {
		limS = probe
	}
	if g.Seq != nil && !g.Seq.Finite() {
		limQ = probe
	}
	inSet := make(map[ResourceView]bool)
	if g.Set != nil {
		s, err := CollectViews(g.Set, limS)
		if err != nil {
			return fmt.Errorf("core: iterating group set: %w", err)
		}
		for _, v := range s {
			inSet[v] = true
		}
	}
	if g.Seq != nil {
		q, err := CollectViews(g.Seq, limQ)
		if err != nil {
			return fmt.Errorf("core: iterating group sequence: %w", err)
		}
		for _, v := range q {
			if inSet[v] {
				return fmt.Errorf("core: group invariant violated: view %q appears in both S and Q", NameOf(v))
			}
		}
	}
	return nil
}
