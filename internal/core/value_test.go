package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndString(t *testing.T) {
	ts := time.Date(2005, 3, 19, 11, 54, 0, 0, time.UTC)
	cases := []struct {
		v    Value
		kind Domain
		str  string
	}{
		{Null(), DomainNull, "null"},
		{String("PIM"), DomainString, "PIM"},
		{Int(4096), DomainInt, "4096"},
		{Float(2.5), DomainFloat, "2.5"},
		{Bool(true), DomainBool, "true"},
		{Time(ts), DomainTime, "2005-03-19 11:54:00"},
		{BytesValue([]byte("abc")), DomainBytes, "abc"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind of %v: got %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() of kind %v: got %q, want %q", c.kind, got, c.str)
		}
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if String("").IsNull() {
		t.Error("String(\"\").IsNull() = true")
	}
}

func TestCompareNumericCrossDomain(t *testing.T) {
	c, err := Compare(Int(3), Float(3.5))
	if err != nil || c >= 0 {
		t.Errorf("Compare(3, 3.5) = %d, %v; want negative, nil", c, err)
	}
	c, err = Compare(Float(4.0), Int(4))
	if err != nil || c != 0 {
		t.Errorf("Compare(4.0, 4) = %d, %v; want 0, nil", c, err)
	}
}

func TestCompareStrings(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want int
	}{
		{"a", "b", -1}, {"b", "a", 1}, {"a", "a", 0},
	} {
		c, err := Compare(String(tc.a), String(tc.b))
		if err != nil {
			t.Fatalf("Compare(%q, %q): %v", tc.a, tc.b, err)
		}
		if sign(c) != tc.want {
			t.Errorf("Compare(%q, %q) = %d, want sign %d", tc.a, tc.b, c, tc.want)
		}
	}
}

func TestCompareTimes(t *testing.T) {
	early := Time(time.Date(2005, 6, 12, 0, 0, 0, 0, time.UTC))
	late := Time(time.Date(2005, 9, 22, 16, 14, 0, 0, time.UTC))
	if c, _ := Compare(early, late); c >= 0 {
		t.Errorf("early vs late = %d, want negative", c)
	}
	if c, _ := Compare(late, early); c <= 0 {
		t.Errorf("late vs early = %d, want positive", c)
	}
	if c, _ := Compare(early, early); c != 0 {
		t.Errorf("early vs early = %d, want 0", c)
	}
}

func TestCompareBools(t *testing.T) {
	if c, _ := Compare(Bool(false), Bool(true)); c >= 0 {
		t.Error("false should sort before true")
	}
	if c, _ := Compare(Bool(true), Bool(true)); c != 0 {
		t.Error("true should equal true")
	}
}

func TestCompareBytes(t *testing.T) {
	if c, _ := Compare(BytesValue([]byte("aa")), BytesValue([]byte("ab"))); c >= 0 {
		t.Error("byte strings should compare lexicographically")
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if c, _ := Compare(Null(), Int(0)); c >= 0 {
		t.Error("null should sort before any non-null value")
	}
	if c, _ := Compare(Int(0), Null()); c <= 0 {
		t.Error("non-null should sort after null")
	}
	if c, _ := Compare(Null(), Null()); c != 0 {
		t.Error("null should equal null")
	}
}

func TestCompareIncomparable(t *testing.T) {
	pairs := [][2]Value{
		{String("a"), Int(1)},
		{Bool(true), Float(1)},
		{Time(time.Now()), String("now")},
	}
	for _, p := range pairs {
		if _, err := Compare(p[0], p[1]); err != ErrIncomparable {
			t.Errorf("Compare(%v, %v): err = %v, want ErrIncomparable", p[0], p[1], err)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(5), Float(5)) {
		t.Error("5 should equal 5.0")
	}
	if Equal(String("x"), Int(1)) {
		t.Error("incomparable values must not be equal")
	}
}

// Property: Compare over int values is antisymmetric and consistent with
// native ordering.
func TestCompareIntPropertyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		c1, err1 := Compare(Int(a), Int(b))
		c2, err2 := Compare(Int(b), Int(a))
		if err1 != nil || err2 != nil {
			return false
		}
		if sign(c1) != -sign(c2) {
			return false
		}
		switch {
		case a < b:
			return c1 < 0
		case a > b:
			return c1 > 0
		default:
			return c1 == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string comparison agrees with Go's native string ordering.
func TestCompareStringPropertyQuick(t *testing.T) {
	f := func(a, b string) bool {
		c, err := Compare(String(a), String(b))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
