package core

import (
	"bytes"
	"io"
)

// SizeUnknown is returned by Content.Size when the size of the content is
// not known in advance (for example, intensional content) or is infinite.
const SizeUnknown int64 = -1

// Content is the χ component of a resource view: a (possibly infinite)
// string of symbols over some alphabet Σ_c. Symbols are modelled as
// bytes. Content is opened for reading anew on every access, reflecting
// the paper's lazy get-method semantics: whether the symbols come from a
// disk file, a remote server or a running computation is hidden behind
// this interface.
//
// For infinite content (media streams, §4.4), Finite reports false and
// the reader returned by Open never reaches io.EOF.
type Content interface {
	// Open starts a new read of the content from its beginning.
	Open() io.ReadCloser
	// Finite reports whether the symbol sequence is finite.
	Finite() bool
	// Size returns the number of symbols, or SizeUnknown when the
	// content is infinite or its size cannot be determined cheaply.
	Size() int64
}

// emptyContent is the empty content component ⟨⟩.
type emptyContent struct{}

func (emptyContent) Open() io.ReadCloser { return io.NopCloser(bytes.NewReader(nil)) }
func (emptyContent) Finite() bool        { return true }
func (emptyContent) Size() int64         { return 0 }

// EmptyContent returns the empty content component ⟨⟩.
func EmptyContent() Content { return emptyContent{} }

// IsEmptyContent reports whether c is absent or has zero known size.
func IsEmptyContent(c Content) bool {
	return c == nil || (c.Finite() && c.Size() == 0)
}

// bytesContent is finite extensional content held in memory.
type bytesContent struct{ b []byte }

func (c bytesContent) Open() io.ReadCloser { return io.NopCloser(bytes.NewReader(c.b)) }
func (c bytesContent) Finite() bool        { return true }
func (c bytesContent) Size() int64         { return int64(len(c.b)) }

// BytesContent wraps b as finite content. The slice is not copied; the
// caller must not mutate it afterwards.
func BytesContent(b []byte) Content { return bytesContent{b} }

// StringContent wraps s as finite content.
func StringContent(s string) Content { return bytesContent{[]byte(s)} }

// funcContent defers to an open function; used for intensional and
// infinite content components.
type funcContent struct {
	open   func() io.ReadCloser
	finite bool
	size   int64
}

func (c funcContent) Open() io.ReadCloser { return c.open() }
func (c funcContent) Finite() bool        { return c.finite }
func (c funcContent) Size() int64         { return c.size }

// FuncContent builds a content component whose symbols are produced by
// open on every access. Pass SizeUnknown when the size is not known.
func FuncContent(open func() io.ReadCloser, finite bool, size int64) Content {
	return funcContent{open: open, finite: finite, size: size}
}

// InfiniteContent builds an infinite content component (for example a
// media stream) whose symbols are produced by open.
func InfiniteContent(open func() io.ReadCloser) Content {
	return funcContent{open: open, finite: false, size: SizeUnknown}
}

// ReadAllContent reads a finite content component fully into memory. It
// returns at most limit bytes (guarding against unexpectedly infinite
// content); limit <= 0 means no limit and must only be used on content
// known to be finite.
func ReadAllContent(c Content, limit int64) ([]byte, error) {
	if c == nil {
		return nil, nil
	}
	r := c.Open()
	defer r.Close()
	if limit > 0 {
		b, err := io.ReadAll(io.LimitReader(r, limit))
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	return io.ReadAll(r)
}
