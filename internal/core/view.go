package core

import "sync"

// ResourceView is the central abstraction of iDM (Definition 1): a
// 4-tuple (η, τ, χ, γ) of a name component, a tuple component, a content
// component and a group component. Following §4.1 of the paper, a
// resource view is modelled as an interface of get-methods so that every
// component may be computed lazily — each implementation hides how, when
// and where its components are computed.
//
// Class returns the name of the resource view class the view obeys to, or
// "" for class-less views (iDM supports schema-later and schema-never
// modelling). Conceptually the class tag is catalog metadata rather than
// a fifth component; it is carried on the view for convenient evaluation
// of iQL class predicates.
//
// Implementations must be pointer-shaped (comparable by identity): graph
// algorithms use the view value itself as a map key for cycle detection.
type ResourceView interface {
	// Name returns the η component, a finite string.
	Name() string
	// Tuple returns the τ component, a (schema, tuple) pair.
	Tuple() TupleComponent
	// Content returns the χ component. Implementations may return nil
	// for the empty content component.
	Content() Content
	// Group returns the γ component. Implementations may return the
	// zero Group for the empty group component.
	Group() Group
	// Class returns the resource view class name, or "".
	Class() string
}

// StaticView is a fully materialized (extensional) resource view. Its
// fields may be set directly; the zero StaticView is the view with four
// empty components and no class.
type StaticView struct {
	VName    string
	VTuple   TupleComponent
	VContent Content
	VGroup   Group
	VClass   string
}

// NewView builds a static view with the given name and class and empty
// remaining components.
func NewView(name, class string) *StaticView {
	return &StaticView{VName: name, VClass: class}
}

// Name implements ResourceView.
func (v *StaticView) Name() string { return v.VName }

// Tuple implements ResourceView.
func (v *StaticView) Tuple() TupleComponent { return v.VTuple }

// Content implements ResourceView.
func (v *StaticView) Content() Content {
	if v.VContent == nil {
		return EmptyContent()
	}
	return v.VContent
}

// Group implements ResourceView.
func (v *StaticView) Group() Group { return v.VGroup }

// Class implements ResourceView.
func (v *StaticView) Class() string { return v.VClass }

// WithTuple sets the tuple component and returns the view for chaining.
func (v *StaticView) WithTuple(t TupleComponent) *StaticView {
	v.VTuple = t
	return v
}

// WithContent sets the content component and returns the view.
func (v *StaticView) WithContent(c Content) *StaticView {
	v.VContent = c
	return v
}

// WithGroup sets the group component and returns the view.
func (v *StaticView) WithGroup(g Group) *StaticView {
	v.VGroup = g
	return v
}

// LazyView computes components on demand through supplier functions and
// memoizes the result, implementing the intensional resource views of
// §4.3: a supplier may run a query, call a remote service or parse file
// content, and does so at most once per view. Nil suppliers yield the
// corresponding empty component.
//
// LazyView is safe for concurrent use.
type LazyView struct {
	VName  string
	VClass string

	TupleFn   func() TupleComponent
	ContentFn func() Content
	GroupFn   func() Group

	tupleOnce   sync.Once
	tuple       TupleComponent
	contentOnce sync.Once
	content     Content
	groupOnce   sync.Once
	group       Group
}

// Name implements ResourceView.
func (v *LazyView) Name() string { return v.VName }

// Class implements ResourceView.
func (v *LazyView) Class() string { return v.VClass }

// Tuple implements ResourceView, invoking TupleFn at most once.
func (v *LazyView) Tuple() TupleComponent {
	v.tupleOnce.Do(func() {
		if v.TupleFn != nil {
			v.tuple = v.TupleFn()
		}
	})
	return v.tuple
}

// Content implements ResourceView, invoking ContentFn at most once.
func (v *LazyView) Content() Content {
	v.contentOnce.Do(func() {
		if v.ContentFn != nil {
			v.content = v.ContentFn()
		}
		if v.content == nil {
			v.content = EmptyContent()
		}
	})
	return v.content
}

// Group implements ResourceView, invoking GroupFn at most once.
func (v *LazyView) Group() Group {
	v.groupOnce.Do(func() {
		if v.GroupFn != nil {
			v.group = v.GroupFn()
		}
		if v.group.Set == nil {
			v.group.Set = NoViews()
		}
		if v.group.Seq == nil {
			v.group.Seq = NoViews()
		}
	})
	return v.group
}

// DynamicView computes components on demand through supplier functions
// without memoizing: every access re-invokes the supplier. Use it for
// views over mutable subsystems (a folder whose children change, an
// INBOX whose window moves) where the freshest state must be observed on
// each access; use LazyView when the computed component is immutable.
// Nil suppliers yield the corresponding empty component.
type DynamicView struct {
	VName  string
	VClass string

	TupleFn   func() TupleComponent
	ContentFn func() Content
	GroupFn   func() Group
}

// Name implements ResourceView.
func (v *DynamicView) Name() string { return v.VName }

// Class implements ResourceView.
func (v *DynamicView) Class() string { return v.VClass }

// Tuple implements ResourceView, re-invoking TupleFn on every call.
func (v *DynamicView) Tuple() TupleComponent {
	if v.TupleFn == nil {
		return TupleComponent{}
	}
	return v.TupleFn()
}

// Content implements ResourceView, re-invoking ContentFn on every call.
func (v *DynamicView) Content() Content {
	if v.ContentFn == nil {
		return EmptyContent()
	}
	if c := v.ContentFn(); c != nil {
		return c
	}
	return EmptyContent()
}

// Group implements ResourceView, re-invoking GroupFn on every call.
func (v *DynamicView) Group() Group {
	if v.GroupFn == nil {
		return EmptyGroup()
	}
	g := v.GroupFn()
	if g.Set == nil {
		g.Set = NoViews()
	}
	if g.Seq == nil {
		g.Seq = NoViews()
	}
	return g
}

// NameOf returns v.Name, tolerating nil views.
func NameOf(v ResourceView) string {
	if v == nil {
		return "<nil>"
	}
	return v.Name()
}
