package core

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyContent(t *testing.T) {
	c := EmptyContent()
	if !c.Finite() || c.Size() != 0 {
		t.Errorf("empty content: finite=%v size=%d", c.Finite(), c.Size())
	}
	b, err := ReadAllContent(c, 0)
	if err != nil || len(b) != 0 {
		t.Errorf("ReadAllContent(empty) = %q, %v", b, err)
	}
	if !IsEmptyContent(c) || !IsEmptyContent(nil) {
		t.Error("IsEmptyContent should hold for empty and nil content")
	}
}

func TestBytesContentRereadable(t *testing.T) {
	c := StringContent("hello world")
	for i := 0; i < 3; i++ {
		b, err := ReadAllContent(c, 0)
		if err != nil || string(b) != "hello world" {
			t.Fatalf("read %d: %q, %v", i, b, err)
		}
	}
	if c.Size() != 11 || !c.Finite() {
		t.Errorf("size=%d finite=%v", c.Size(), c.Finite())
	}
}

func TestFuncContent(t *testing.T) {
	opens := 0
	c := FuncContent(func() io.ReadCloser {
		opens++
		return io.NopCloser(strings.NewReader("computed"))
	}, true, 8)
	b, _ := ReadAllContent(c, 0)
	b2, _ := ReadAllContent(c, 0)
	if string(b) != "computed" || string(b2) != "computed" {
		t.Errorf("reads: %q, %q", b, b2)
	}
	if opens != 2 {
		t.Errorf("open called %d times, want 2 (fresh read per access)", opens)
	}
}

// infiniteReader yields 'x' forever — a stand-in for a media stream.
type infiniteReader struct{}

func (infiniteReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'x'
	}
	return len(p), nil
}
func (infiniteReader) Close() error { return nil }

func TestInfiniteContentLimitedRead(t *testing.T) {
	c := InfiniteContent(func() io.ReadCloser { return infiniteReader{} })
	if c.Finite() {
		t.Error("infinite content reported finite")
	}
	if c.Size() != SizeUnknown {
		t.Errorf("size = %d, want SizeUnknown", c.Size())
	}
	b, err := ReadAllContent(c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1000 {
		t.Errorf("limited read returned %d bytes, want 1000", len(b))
	}
}

// Property: BytesContent round-trips arbitrary byte strings.
func TestBytesContentRoundtripQuick(t *testing.T) {
	f := func(data []byte) bool {
		c := BytesContent(data)
		got, err := ReadAllContent(c, 0)
		if err != nil {
			return false
		}
		if c.Size() != int64(len(data)) {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
