package core

// Standard resource view class names. The first block is Table 1 of the
// paper verbatim; the second block covers the LaTeX, email and RSS
// classes that §2.3, §4.4.1, §5 and the evaluation queries (Table 4)
// rely on.
const (
	ClassFile      = "file"
	ClassFolder    = "folder"
	ClassTuple     = "tuple"
	ClassRelation  = "relation"
	ClassRelDB     = "reldb"
	ClassXMLText   = "xmltext"
	ClassXMLElem   = "xmlelem"
	ClassXMLDoc    = "xmldoc"
	ClassXMLFile   = "xmlfile"
	ClassDatStream = "datstream"
	ClassTupStream = "tupstream"
	ClassRSSAtom   = "rssatom"

	ClassLatexFile       = "latexfile"
	ClassLatexDocclass   = "latex_documentclass"
	ClassLatexDocument   = "latex_document"
	ClassLatexSection    = "latex_section"
	ClassLatexSubsection = "latex_subsection"
	ClassLatexText       = "latex_text"
	ClassLatexTitle      = "latex_title"
	ClassLatexAbstract   = "latex_abstract"
	ClassTexRef          = "texref"
	ClassEnvironment     = "environment"
	ClassFigure          = "figure"
	ClassCaption         = "caption"
	ClassLabel           = "label"

	ClassEmailFolder  = "emailfolder"
	ClassEmailMessage = "emailmessage"
	ClassAttachment   = "attachment"
	ClassMessageText  = "messagetext"

	ClassActiveXML       = "axml"
	ClassServiceCall     = "sc"
	ClassServiceCallJSON = "scresult"
)

// FSSchema is W_FS, the filesystem-level schema of §3.2: the fixed set of
// properties every files&folders node carries.
var FSSchema = Schema{
	{Name: "size", Domain: DomainInt},
	{Name: "creationtime", Domain: DomainTime},
	{Name: "lastmodified", Domain: DomainTime},
}

// StandardRegistry builds a class registry pre-populated with every class
// of Table 1 plus the LaTeX, email and ActiveXML classes used throughout
// the paper. The generalization hierarchy follows §3: xmlfile and
// latexfile specialize file; tupstream and rssatom specialize datstream;
// the LaTeX structural classes specialize a common "latexnode"; axml
// specializes xmlelem.
func StandardRegistry() *Registry {
	r := NewRegistry()

	// --- Table 1 ------------------------------------------------------
	r.MustRegister(&Class{
		Name:         ClassFile,
		NamePresence: MustBePresent,
		TupleSchema:  FSSchema,
		SetPresence:  MustBeEmpty,
		// Q is empty for plain files; specializations such as xmlfile
		// override this by omitting the restriction at their own level
		// (a file's Q restriction therefore lives only here and is
		// deliberately Any so that subclasses may relate content views).
	})
	r.MustRegister(&Class{
		Name:            ClassFolder,
		NamePresence:    MustBePresent,
		TupleSchema:     FSSchema,
		ContentPresence: MustBeEmpty,
		SeqPresence:     MustBeEmpty,
		SetExtent:       MustBeFinite,
		ChildClasses:    []string{ClassFile, ClassFolder},
	})
	r.MustRegister(&Class{
		Name:            ClassTuple,
		NamePresence:    MustBeEmpty,
		TuplePresence:   MustBePresent,
		ContentPresence: MustBeEmpty,
		SetPresence:     MustBeEmpty,
		SeqPresence:     MustBeEmpty,
	})
	r.MustRegister(&Class{
		Name:            ClassRelation,
		NamePresence:    MustBePresent,
		TuplePresence:   MustBeEmpty,
		ContentPresence: MustBeEmpty,
		SeqPresence:     MustBeEmpty,
		SetExtent:       MustBeFinite,
		ChildClasses:    []string{ClassTuple},
	})
	r.MustRegister(&Class{
		Name:            ClassRelDB,
		NamePresence:    MustBePresent,
		TuplePresence:   MustBeEmpty,
		ContentPresence: MustBeEmpty,
		SeqPresence:     MustBeEmpty,
		ChildClasses:    []string{ClassRelation},
	})
	r.MustRegister(&Class{
		Name:            ClassXMLText,
		NamePresence:    MustBeEmpty,
		TuplePresence:   MustBeEmpty,
		ContentPresence: MustBePresent,
		ContentExtent:   MustBeFinite,
		SetPresence:     MustBeEmpty,
		SeqPresence:     MustBeEmpty,
	})
	r.MustRegister(&Class{
		Name:            ClassXMLElem,
		NamePresence:    MustBePresent,
		ContentPresence: MustBeEmpty,
		SetPresence:     MustBeEmpty,
		SeqExtent:       MustBeFinite,
		ChildClasses:    []string{ClassXMLText, ClassXMLElem},
	})
	r.MustRegister(&Class{
		Name:            ClassXMLDoc,
		NamePresence:    MustBeEmpty,
		TuplePresence:   MustBeEmpty,
		ContentPresence: MustBeEmpty,
		SetPresence:     MustBeEmpty,
		SeqPresence:     MustBePresent,
		SeqExtent:       MustBeFinite,
		ChildClasses:    []string{ClassXMLElem},
	})
	r.MustRegister(&Class{
		Name:         ClassXMLFile,
		Parent:       ClassFile,
		SeqPresence:  MustBePresent,
		SeqExtent:    MustBeFinite,
		ChildClasses: []string{ClassXMLDoc},
	})
	r.MustRegister(&Class{
		Name:            ClassDatStream,
		NamePresence:    Any,
		TuplePresence:   MustBeEmpty,
		ContentPresence: MustBeEmpty,
		SetPresence:     MustBeEmpty,
		SeqExtent:       MustBeInfinite,
	})
	r.MustRegister(&Class{
		Name:         ClassTupStream,
		Parent:       ClassDatStream,
		ChildClasses: []string{ClassTuple},
	})
	r.MustRegister(&Class{
		Name:         ClassRSSAtom,
		Parent:       ClassDatStream,
		ChildClasses: []string{ClassXMLDoc},
	})

	// --- LaTeX (§2.3: graph-structured content inside files) -----------
	r.MustRegister(&Class{
		Name:         ClassLatexFile,
		Parent:       ClassFile,
		SeqPresence:  MustBePresent,
		SeqExtent:    MustBeFinite,
		ChildClasses: []string{ClassLatexDocclass, ClassLatexDocument, ClassLatexTitle, ClassLatexAbstract},
	})
	r.MustRegister(&Class{Name: "latexnode"})
	for _, n := range []string{
		ClassLatexDocclass, ClassLatexDocument, ClassLatexSection,
		ClassLatexSubsection, ClassLatexTitle, ClassLatexAbstract,
		ClassTexRef, ClassEnvironment, ClassCaption, ClassLabel,
	} {
		r.MustRegister(&Class{Name: n, Parent: "latexnode"})
	}
	r.MustRegister(&Class{
		Name:            ClassLatexText,
		Parent:          "latexnode",
		ContentPresence: MustBePresent,
		ContentExtent:   MustBeFinite,
	})
	r.MustRegister(&Class{Name: ClassFigure, Parent: ClassEnvironment})

	// --- Email (§4.4.1) -------------------------------------------------
	r.MustRegister(&Class{
		Name:         ClassEmailFolder,
		NamePresence: MustBePresent,
	})
	r.MustRegister(&Class{
		Name:         ClassEmailMessage,
		NamePresence: MustBePresent,
	})
	r.MustRegister(&Class{
		Name:         ClassAttachment,
		Parent:       ClassFile,
		NamePresence: MustBePresent,
	})
	r.MustRegister(&Class{
		Name:            ClassMessageText,
		ContentPresence: MustBePresent,
		ContentExtent:   MustBeFinite,
	})

	// --- ActiveXML (§4.3.1) ---------------------------------------------
	r.MustRegister(&Class{Name: ClassServiceCall, Parent: ClassXMLElem})
	r.MustRegister(&Class{Name: ClassServiceCallJSON, Parent: ClassXMLElem})
	r.MustRegister(&Class{
		Name:   ClassActiveXML,
		Parent: ClassXMLElem,
	})

	return r
}
