package core

import "testing"

func TestDynamicViewRecomputes(t *testing.T) {
	groupCalls, tupleCalls, contentCalls := 0, 0, 0
	children := namedViews("a")
	v := &DynamicView{
		VName:  "dyn",
		VClass: ClassFolder,
		TupleFn: func() TupleComponent {
			tupleCalls++
			return TupleComponent{
				Schema: Schema{{Name: "n", Domain: DomainInt}},
				Tuple:  Tuple{Int(int64(tupleCalls))},
			}
		},
		ContentFn: func() Content {
			contentCalls++
			return StringContent("v")
		},
		GroupFn: func() Group {
			groupCalls++
			return SetGroup(children...)
		},
	}
	for i := 0; i < 3; i++ {
		v.Tuple()
		v.Content()
		v.Group()
	}
	if tupleCalls != 3 || contentCalls != 3 || groupCalls != 3 {
		t.Errorf("calls = %d/%d/%d, want 3/3/3 (no memoization)", tupleCalls, contentCalls, groupCalls)
	}
	// Fresh state is observed.
	children = namedViews("a", "b")
	got, _ := CollectIter(v.Group().Iter(), 0)
	if len(got) != 2 {
		t.Errorf("dynamic group sees %d children, want 2", len(got))
	}
	if n, _ := v.Tuple().Get("n"); n.Int != int64(tupleCalls) {
		t.Errorf("tuple not fresh: %v", n)
	}
}

func TestDynamicViewNilSuppliers(t *testing.T) {
	v := &DynamicView{VName: "empty", VClass: ClassFile}
	if !v.Tuple().IsEmpty() {
		t.Error("nil TupleFn should yield empty tuple")
	}
	if !IsEmptyContent(v.Content()) {
		t.Error("nil ContentFn should yield empty content")
	}
	if !v.Group().IsEmpty() {
		t.Error("nil GroupFn should yield empty group")
	}
	if v.Name() != "empty" || v.Class() != ClassFile {
		t.Error("identity accessors broken")
	}
}

func TestDynamicViewNilReturnNormalized(t *testing.T) {
	v := &DynamicView{
		ContentFn: func() Content { return nil },
		GroupFn:   func() Group { return Group{} },
	}
	if v.Content() == nil {
		t.Error("nil content not normalized")
	}
	g := v.Group()
	if g.Set == nil || g.Seq == nil {
		t.Error("nil group parts not normalized")
	}
}
