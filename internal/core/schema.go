package core

import (
	"fmt"
	"strings"
)

// Attribute names a role played by a domain in a schema, per Definition 1
// of the paper: a schema W = <a_1, ..., a_k> is a sequence of attributes,
// where each attribute is the name of a role played by some domain D_j.
type Attribute struct {
	Name   string
	Domain Domain
}

// Schema is an ordered sequence of attributes. Unlike the classical
// relational model, iDM defines a schema per tuple (each resource view
// carries its own τ = (W, T)); resource view classes reintroduce shared
// schemas across sets of views.
type Schema []Attribute

// String renders the schema as "<name: domain, ...>".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, a := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", a.Name, a.Domain)
	}
	b.WriteByte('>')
	return b.String()
}

// IndexOf returns the position of the attribute with the given name, or
// -1 when the schema has no such attribute. Attribute names compare
// case-insensitively, matching iQL's treatment of attribute identifiers.
func (s Schema) IndexOf(name string) int {
	for i, a := range s {
		if strings.EqualFold(a.Name, name) {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas have the same attributes, names and
// domains, in the same order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Tuple is a sequence of atomic values conforming positionally to a
// schema.
type Tuple []Value

// TupleComponent is the τ component of a resource view: a 2-tuple (W, T)
// of a schema and one single tuple that conforms to it. The zero
// TupleComponent is the empty tuple component ().
type TupleComponent struct {
	Schema Schema
	Tuple  Tuple
}

// EmptyTuple returns the empty tuple component ().
func EmptyTuple() TupleComponent { return TupleComponent{} }

// IsEmpty reports whether the tuple component is the empty 2-tuple.
func (t TupleComponent) IsEmpty() bool {
	return len(t.Schema) == 0 && len(t.Tuple) == 0
}

// Validate checks that the tuple conforms to the schema: same arity, and
// every non-null value drawn from its attribute's domain (integers are
// also accepted where floats are expected).
func (t TupleComponent) Validate() error {
	if len(t.Schema) != len(t.Tuple) {
		return fmt.Errorf("core: tuple arity %d does not match schema arity %d",
			len(t.Tuple), len(t.Schema))
	}
	for i, v := range t.Tuple {
		if v.IsNull() {
			continue
		}
		want := t.Schema[i].Domain
		if v.Kind == want {
			continue
		}
		if want == DomainFloat && v.Kind == DomainInt {
			continue
		}
		return fmt.Errorf("core: attribute %q expects domain %s, got %s",
			t.Schema[i].Name, want, v.Kind)
	}
	return nil
}

// Get returns the value of the named attribute and whether the attribute
// exists in the schema.
func (t TupleComponent) Get(name string) (Value, bool) {
	i := t.Schema.IndexOf(name)
	if i < 0 || i >= len(t.Tuple) {
		return Value{}, false
	}
	return t.Tuple[i], true
}

// String renders the tuple component as "(W, T)"; the empty component
// renders as "()".
func (t TupleComponent) String() string {
	if t.IsEmpty() {
		return "()"
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(t.Schema.String())
	b.WriteString(", <")
	for i, v := range t.Tuple {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(">)")
	return b.String()
}
