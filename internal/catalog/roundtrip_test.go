package catalog

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: Save followed by Load reproduces every entry, the URI
// mapping, and the OID allocator position, for arbitrary entry
// contents.
func TestSaveLoadPropertyQuick(t *testing.T) {
	f := func(names []string, derivedBits []bool) bool {
		c := New()
		for i, name := range names {
			e := Entry{
				Name:   name,
				Class:  "class-" + name,
				Source: "src",
				URI:    "/u/" + itoa(i),
			}
			if i < len(derivedBits) {
				e.Derived = derivedBits[i]
			}
			c.Register(e)
		}
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		if loaded.Count() != c.Count() {
			return false
		}
		for _, e := range c.All() {
			got, err := loaded.Get(e.OID)
			if err != nil || got != e {
				return false
			}
			byURI, err := loaded.ByURI(e.Source, e.URI)
			if err != nil || byURI.OID != e.OID {
				return false
			}
		}
		// Allocation continues past the persisted maximum.
		next := loaded.Register(Entry{Source: "src", URI: "/fresh"})
		return next == OID(len(names))+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
