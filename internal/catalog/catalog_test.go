package catalog

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRegisterAssignsSequentialOIDs(t *testing.T) {
	c := New()
	a := c.Register(Entry{Name: "a", Source: "fs", URI: "/a"})
	b := c.Register(Entry{Name: "b", Source: "fs", URI: "/b"})
	if a == 0 || b != a+1 {
		t.Errorf("oids = %d, %d", a, b)
	}
	if c.Count() != 2 {
		t.Errorf("count = %d", c.Count())
	}
}

func TestRegisterStableOIDOnReRegister(t *testing.T) {
	c := New()
	first := c.Register(Entry{Name: "f", Source: "fs", URI: "/f", ContentSize: 10})
	again := c.Register(Entry{Name: "f2", Source: "fs", URI: "/f", ContentSize: 20})
	if first != again {
		t.Errorf("re-register changed OID: %d → %d", first, again)
	}
	e, err := c.Get(first)
	if err != nil || e.Name != "f2" || e.ContentSize != 20 {
		t.Errorf("entry not updated: %+v, %v", e, err)
	}
	if c.Count() != 1 {
		t.Errorf("count = %d", c.Count())
	}
}

func TestRegisterEmptyURINeverCollides(t *testing.T) {
	c := New()
	a := c.Register(Entry{Name: "x", Source: "fs"})
	b := c.Register(Entry{Name: "y", Source: "fs"})
	if a == b {
		t.Error("entries without URI must get distinct OIDs")
	}
}

func TestGetAndByURI(t *testing.T) {
	c := New()
	oid := c.Register(Entry{Name: "a", Source: "fs", URI: "/a", Class: "file"})
	e, err := c.Get(oid)
	if err != nil || e.Class != "file" {
		t.Errorf("Get: %+v, %v", e, err)
	}
	e, err = c.ByURI("fs", "/a")
	if err != nil || e.OID != oid {
		t.Errorf("ByURI: %+v, %v", e, err)
	}
	if _, err := c.Get(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing oid: %v", err)
	}
	if _, err := c.ByURI("fs", "/zzz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing uri: %v", err)
	}
	// Same URI under a different source is a different entry.
	other := c.Register(Entry{Name: "a", Source: "mail", URI: "/a"})
	if other == oid {
		t.Error("URI collided across sources")
	}
}

func TestRemove(t *testing.T) {
	c := New()
	oid := c.Register(Entry{Name: "a", Source: "fs", URI: "/a"})
	if err := c.Remove(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(oid); !errors.Is(err, ErrNotFound) {
		t.Error("entry survives remove")
	}
	if _, err := c.ByURI("fs", "/a"); !errors.Is(err, ErrNotFound) {
		t.Error("uri mapping survives remove")
	}
	if err := c.Remove(oid); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
	// The URI may be reused afterwards with a fresh OID.
	again := c.Register(Entry{Name: "a", Source: "fs", URI: "/a"})
	if again == oid {
		t.Error("OID reused after remove+register")
	}
}

func TestAllSorted(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.Register(Entry{Name: "e", Source: "s", URI: string(rune('a' + i))})
	}
	all := c.All()
	if len(all) != 10 {
		t.Fatalf("all = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].OID <= all[i-1].OID {
			t.Fatal("All not OID-sorted")
		}
	}
}

func TestSourcesAndStats(t *testing.T) {
	c := New()
	c.Register(Entry{Source: "fs", URI: "/a", ContentSize: 100})
	c.Register(Entry{Source: "fs", URI: "/a#1", Class: "xmlelem", Derived: true})
	c.Register(Entry{Source: "fs", URI: "/a#2", Class: "latex_section", Derived: true})
	c.Register(Entry{Source: "fs", URI: "/a#3", Class: "texref", Derived: true})
	c.Register(Entry{Source: "mail", URI: "m/1", ContentSize: 50})

	if got := c.Sources(); !reflect.DeepEqual(got, []string{"fs", "mail"}) {
		t.Errorf("sources = %v", got)
	}
	st := c.StatsFor("fs")
	if st.Base != 1 || st.Derived != 3 {
		t.Errorf("fs stats = %+v", st)
	}
	if st.DerivedByClassPrefix["xml"] != 1 || st.DerivedByClassPrefix["latex"] != 2 {
		t.Errorf("class breakdown = %v", st.DerivedByClassPrefix)
	}
	if st.ContentBytes != 100 {
		t.Errorf("content bytes = %d", st.ContentBytes)
	}
	if st := c.StatsFor("nope"); st.Base != 0 || st.Derived != 0 {
		t.Errorf("unknown source stats = %+v", st)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	c := New()
	empty := c.SizeBytes()
	c.Register(Entry{Name: "long name here", Source: "fs", URI: "/long/path/entry"})
	if c.SizeBytes() <= empty {
		t.Error("size did not grow")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	c := New()
	o1 := c.Register(Entry{Name: "a", Source: "fs", URI: "/a", Class: "file", ContentSize: 7})
	c.Register(Entry{Name: "b", Source: "mail", URI: "m/1", Derived: true})
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Count() != 2 {
		t.Fatalf("loaded count = %d", loaded.Count())
	}
	e, err := loaded.Get(o1)
	if err != nil || e.Name != "a" || e.ContentSize != 7 {
		t.Errorf("loaded entry = %+v, %v", e, err)
	}
	if _, err := loaded.ByURI("mail", "m/1"); err != nil {
		t.Errorf("uri map not rebuilt: %v", err)
	}
	// OID allocation continues after the highest persisted OID.
	next := loaded.Register(Entry{Name: "c", Source: "fs", URI: "/c"})
	if next <= 2 {
		t.Errorf("next oid = %d, want > 2", next)
	}
}

func TestLoadCorruptData(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("corrupt data accepted")
	}
}

// Property: OIDs are unique across any interleaving of registers (with
// distinct URIs) and lookups return what was stored.
func TestRegisterUniquenessQuick(t *testing.T) {
	f := func(uris []string) bool {
		c := New()
		seen := make(map[OID]bool)
		byURI := make(map[string]OID)
		for _, u := range uris {
			if u == "" {
				continue // empty URI means "no URI": no stability contract
			}
			oid := c.Register(Entry{Source: "s", URI: u})
			if prev, dup := byURI[u]; dup {
				if oid != prev {
					return false // same URI must keep its OID
				}
				continue
			}
			if seen[oid] {
				return false
			}
			seen[oid] = true
			byURI[u] = oid
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
