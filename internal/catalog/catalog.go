// Package catalog implements the Resource View Catalog of §5.2 of the
// iDM paper: the central registry in which every resource view managed by
// the Resource View Manager is recorded under a stable OID, together with
// the metadata the Replica&Indexes module and the query processor need
// (class, data source, URI within the source, structural parent, and
// component-presence flags). It substitutes for the Apache Derby
// instance of the paper's prototype; persistence uses encoding/gob.
package catalog

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// OID is the stable catalog identifier of a resource view.
type OID uint64

// ErrNotFound is returned when an OID or URI is not registered.
var ErrNotFound = errors.New("catalog: entry not found")

// Entry is the catalog record of one resource view.
type Entry struct {
	OID OID
	// Name is the view's η component (may be empty).
	Name string
	// Class is the resource view class name (may be empty).
	Class string
	// Source identifies the data source the view came from.
	Source string
	// URI locates the view within its source; unique per source when
	// non-empty (e.g. a filesystem path or mail folder/UID).
	URI string
	// Parent is the OID of the primary structural parent, or 0.
	Parent OID
	// HasTuple and HasContent record component presence.
	HasTuple   bool
	HasContent bool
	// ContentSize is the known χ size in bytes, or -1.
	ContentSize int64
	// Stamp is a lightweight modification fingerprint (e.g. the
	// last-modified time from the tuple component); the
	// Synchronization Manager compares it to detect updates.
	Stamp string
	// Derived marks views obtained by converting content components
	// (e.g. XML or LaTeX subgraphs) rather than base items — the
	// distinction Table 2 of the paper reports.
	Derived bool
}

// Catalog is the resource view catalog. The zero value is not usable;
// create one with New. Catalog is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	next    OID
	entries map[OID]*Entry
	byURI   map[string]OID // key: source + "\x00" + uri
	bySrc   map[string]map[OID]struct{}
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		entries: make(map[OID]*Entry),
		byURI:   make(map[string]OID),
		bySrc:   make(map[string]map[OID]struct{}),
	}
}

func uriKey(source, uri string) string { return source + "\x00" + uri }

// Register records an entry and returns its assigned OID. The entry's
// OID field is ignored on input. Registering a (source, URI) pair that
// already exists replaces the previous entry, keeping its OID stable —
// re-synchronizing a data source must not re-identify its views.
func (c *Catalog) Register(e Entry) OID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.URI != "" {
		if oid, ok := c.byURI[uriKey(e.Source, e.URI)]; ok {
			e.OID = oid
			c.entries[oid] = &e
			return oid
		}
	}
	c.next++
	e.OID = c.next
	c.entries[e.OID] = &e
	if e.URI != "" {
		c.byURI[uriKey(e.Source, e.URI)] = e.OID
	}
	src := c.bySrc[e.Source]
	if src == nil {
		src = make(map[OID]struct{})
		c.bySrc[e.Source] = src
	}
	src[e.OID] = struct{}{}
	return e.OID
}

// Put records an entry under the OID it already carries — the
// replication apply path, where the leader assigned the OID and the
// follower must reproduce it exactly. The OID counter is raised so a
// later promotion cannot reuse leader-assigned OIDs. If a different
// entry previously held the same OID with another URI, the stale URI
// mapping is removed.
func (c *Catalog) Put(e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[e.OID]; ok {
		if old.URI != "" && (old.URI != e.URI || old.Source != e.Source) {
			delete(c.byURI, uriKey(old.Source, old.URI))
		}
		if old.Source != e.Source {
			if src := c.bySrc[old.Source]; src != nil {
				delete(src, e.OID)
				if len(src) == 0 {
					delete(c.bySrc, old.Source)
				}
			}
		}
	}
	c.entries[e.OID] = &e
	if e.URI != "" {
		c.byURI[uriKey(e.Source, e.URI)] = e.OID
	}
	src := c.bySrc[e.Source]
	if src == nil {
		src = make(map[OID]struct{})
		c.bySrc[e.Source] = src
	}
	src[e.OID] = struct{}{}
	if e.OID > c.next {
		c.next = e.OID
	}
}

// PinNext raises the OID counter to at least next (replication applies
// the leader's Meta records through it; it never lowers the counter).
func (c *Catalog) PinNext(next OID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if next > c.next {
		c.next = next
	}
}

// Reset replaces the catalog's contents in place — unlike Rebuild it
// keeps the Catalog value (and its mutex) so concurrent readers holding
// the pointer observe either the old or the new contents, never a torn
// mix. Replication full-state transfers use it.
func (c *Catalog) Reset(next OID, entries []Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next = next
	c.entries = make(map[OID]*Entry, len(entries))
	c.byURI = make(map[string]OID, len(entries))
	c.bySrc = make(map[string]map[OID]struct{})
	for i := range entries {
		e := entries[i]
		if e.OID > c.next {
			c.next = e.OID
		}
		c.entries[e.OID] = &e
		if e.URI != "" {
			c.byURI[uriKey(e.Source, e.URI)] = e.OID
		}
		src := c.bySrc[e.Source]
		if src == nil {
			src = make(map[OID]struct{})
			c.bySrc[e.Source] = src
		}
		src[e.OID] = struct{}{}
	}
}

// Get returns the entry registered under oid.
func (c *Catalog) Get(oid OID) (Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[oid]
	if !ok {
		return Entry{}, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	return *e, nil
}

// ByURI returns the entry registered for the (source, uri) pair.
func (c *Catalog) ByURI(source, uri string) (Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	oid, ok := c.byURI[uriKey(source, uri)]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %s %s", ErrNotFound, source, uri)
	}
	return *c.entries[oid], nil
}

// Remove deletes an entry.
func (c *Catalog) Remove(oid OID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[oid]
	if !ok {
		return fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	delete(c.entries, oid)
	if e.URI != "" {
		delete(c.byURI, uriKey(e.Source, e.URI))
	}
	if src := c.bySrc[e.Source]; src != nil {
		delete(src, oid)
		if len(src) == 0 {
			delete(c.bySrc, e.Source)
		}
	}
	return nil
}

// NextOID returns the last OID handed out; persistence records it so
// removed sources never cause OID reuse after a restart.
func (c *Catalog) NextOID() OID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.next
}

// Rebuild reconstructs a catalog from persisted entries — the recovery
// path of the durability layer (internal/store). next is the last OID
// handed out before the snapshot; it is raised to the maximum entry OID
// if the entries run ahead of it.
func Rebuild(next OID, entries []Entry) *Catalog {
	c := New()
	c.next = next
	for i := range entries {
		e := entries[i]
		if e.OID > c.next {
			c.next = e.OID
		}
		c.entries[e.OID] = &e
		if e.URI != "" {
			c.byURI[uriKey(e.Source, e.URI)] = e.OID
		}
		src := c.bySrc[e.Source]
		if src == nil {
			src = make(map[OID]struct{})
			c.bySrc[e.Source] = src
		}
		src[e.OID] = struct{}{}
	}
	return c
}

// Count returns the number of registered entries.
func (c *Catalog) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// All returns every entry in ascending OID order.
func (c *Catalog) All() []Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}

// Sources returns the registered data source names in sorted order.
func (c *Catalog) Sources() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.bySrc))
	for s := range c.bySrc {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SourceOIDs returns the OIDs registered for a data source in ascending
// order.
func (c *Catalog) SourceOIDs(source string) []OID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]OID, 0, len(c.bySrc[source]))
	for oid := range c.bySrc[source] {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SourceStats summarizes a data source's registered views — the numbers
// Table 2 of the paper reports per source.
type SourceStats struct {
	// Base counts views representing base items of the source.
	Base int
	// Derived counts views derived from content (XML/LaTeX subgraphs).
	Derived int
	// DerivedByClassPrefix breaks derived views down by class name
	// prefix ("xml", "latex", ...).
	DerivedByClassPrefix map[string]int
	// ContentBytes sums the known content sizes of base views.
	ContentBytes int64
	// Views is the total view count of the source (Base + Derived) —
	// the per-source cardinality the query planner consumes.
	Views int
	// Classes counts the distinct classes among the source's views.
	Classes int
}

// StatsFor computes per-source statistics.
func (c *Catalog) StatsFor(source string) SourceStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := SourceStats{DerivedByClassPrefix: make(map[string]int)}
	classes := make(map[string]struct{})
	for oid := range c.bySrc[source] {
		e := c.entries[oid]
		if e.Class != "" {
			classes[e.Class] = struct{}{}
		}
		if e.Derived {
			st.Derived++
			st.DerivedByClassPrefix[classPrefix(e.Class)]++
		} else {
			st.Base++
			if e.ContentSize > 0 {
				st.ContentBytes += e.ContentSize
			}
		}
	}
	st.Views = st.Base + st.Derived
	st.Classes = len(classes)
	return st
}

func classPrefix(class string) string {
	for _, p := range []string{"xml", "latex", "tex", "figure", "environment"} {
		if len(class) >= len(p) && class[:len(p)] == p {
			if p == "tex" || p == "figure" || p == "environment" {
				return "latex"
			}
			return p
		}
	}
	return "other"
}

// SizeBytes estimates the catalog's memory footprint for Table 3.
func (c *Catalog) SizeBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, e := range c.entries {
		n += 64 + int64(len(e.Name)+len(e.Class)+len(e.Source)+len(e.URI))
	}
	n += int64(len(c.byURI)) * 24
	return n
}

// snapshot is the gob persistence format.
type snapshot struct {
	Next    OID
	Entries []Entry
}

// Save writes the catalog to w in gob format.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	snap := snapshot{Next: c.next, Entries: make([]Entry, 0, len(c.entries))}
	for _, e := range c.entries {
		snap.Entries = append(snap.Entries, *e)
	}
	c.mu.RUnlock()
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].OID < snap.Entries[j].OID })
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a catalog previously written by Save.
func Load(r io.Reader) (*Catalog, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: load: %w", err)
	}
	c := New()
	c.next = snap.Next
	for i := range snap.Entries {
		e := snap.Entries[i]
		c.entries[e.OID] = &e
		if e.URI != "" {
			c.byURI[uriKey(e.Source, e.URI)] = e.OID
		}
		src := c.bySrc[e.Source]
		if src == nil {
			src = make(map[OID]struct{})
			c.bySrc[e.Source] = src
		}
		src[e.OID] = struct{}{}
	}
	return c, nil
}
