package axml

import (
	"errors"
	"testing"

	"repro/internal/core"
)

const depList = `<deplist><entry><name>Accounting</name></entry><entry><name>Research</name></entry></deplist>`

func TestInvokeLazyAndMemoized(t *testing.T) {
	reg := NewRegistry()
	reg.Register("web.server.com/GetDepartments()", func() (string, error) {
		return depList, nil
	})
	v := NewElement("dep", "web.server.com/GetDepartments()", reg, nil)
	if reg.Calls("web.server.com/GetDepartments()") != 0 {
		t.Fatal("service invoked before group access (must be lazy)")
	}
	g := v.Group()
	children, _ := core.CollectViews(g.Seq, 0)
	if len(children) != 2 {
		t.Fatalf("group = %d views, want <sc, scresult>", len(children))
	}
	if children[0].Class() != core.ClassServiceCall || children[1].Class() != core.ClassServiceCallJSON {
		t.Errorf("classes = %q, %q", children[0].Class(), children[1].Class())
	}
	// The service call text is preserved in the sc view's content.
	b, _ := core.ReadAllContent(children[0].Content(), 0)
	if string(b) != "web.server.com/GetDepartments()" {
		t.Errorf("sc content = %q", b)
	}
	// The result subtree is the parsed XML.
	n, _ := core.CountReachable(children[1], core.WalkOptions{MaxDepth: -1})
	if n < 6 {
		t.Errorf("scresult subtree = %d views", n)
	}
	// Memoized: a second group access does not re-invoke.
	v.Group()
	if reg.Calls("web.server.com/GetDepartments()") != 1 {
		t.Errorf("calls = %d, want 1", reg.Calls("web.server.com/GetDepartments()"))
	}
}

func TestUnknownService(t *testing.T) {
	reg := NewRegistry()
	var got error
	v := NewElement("dep", "missing()", reg, func(err error) { got = err })
	children, _ := core.CollectViews(v.Group().Seq, 0)
	if len(children) != 1 || children[0].Class() != core.ClassServiceCall {
		t.Errorf("group = %v", children)
	}
	if !errors.Is(got, ErrNoService) {
		t.Errorf("err = %v", got)
	}
}

func TestServiceError(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("boom")
	reg.Register("svc()", func() (string, error) { return "", boom })
	var got error
	v := NewElement("e", "svc()", reg, func(err error) { got = err })
	children, _ := core.CollectViews(v.Group().Seq, 0)
	if len(children) != 1 {
		t.Errorf("group = %d views", len(children))
	}
	if !errors.Is(got, boom) {
		t.Errorf("err = %v", got)
	}
}

func TestMalformedServiceResult(t *testing.T) {
	reg := NewRegistry()
	reg.Register("svc()", func() (string, error) { return "<unclosed", nil })
	var got error
	v := NewElement("e", "svc()", reg, func(err error) { got = err })
	children, _ := core.CollectViews(v.Group().Seq, 0)
	if len(children) != 1 {
		t.Errorf("group = %d views", len(children))
	}
	if got == nil {
		t.Error("parse error not observed")
	}
}

func TestAXMLClassIsXMLElemSpecialization(t *testing.T) {
	reg := core.StandardRegistry()
	if !reg.IsA(core.ClassActiveXML, core.ClassXMLElem) {
		t.Error("axml must specialize xmlelem (§4.3.1)")
	}
	if !reg.IsA(core.ClassServiceCall, core.ClassXMLElem) {
		t.Error("sc must specialize xmlelem")
	}
}
