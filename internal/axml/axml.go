// Package axml implements the ActiveXML use-case of §4.3.1 of the iDM
// paper: XML documents enriched with calls to web services, modelled in
// iDM as a subclass AXML of the xmlelem resource view class whose group
// component is ⟨V_sc [, V_scresult]⟩ — the service-call view and, once
// the service has been invoked, the view over its result.
//
// The package includes a tiny in-process service registry standing in
// for remote web services; invoking a service is an intensional
// computation (§4.3), triggered lazily when the AXML view's group
// component is first requested.
package axml

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/xmlkit"
)

// ErrNoService is returned when a call names an unregistered service.
var ErrNoService = errors.New("axml: no such service")

// Service computes an XML result for a call. The returned string must be
// a well-formed XML document.
type Service func() (string, error)

// Registry maps service endpoints ("web.server.com/GetDepartments()") to
// implementations. Registry is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	services map[string]Service
	calls    map[string]int
}

// NewRegistry returns an empty service registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]Service), calls: make(map[string]int)}
}

// Register binds an endpoint to a service implementation.
func (r *Registry) Register(endpoint string, svc Service) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[endpoint] = svc
}

// Calls returns how many times an endpoint has been invoked.
func (r *Registry) Calls(endpoint string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.calls[endpoint]
}

// Invoke calls the service bound to endpoint.
func (r *Registry) Invoke(endpoint string) (string, error) {
	r.mu.Lock()
	svc, ok := r.services[endpoint]
	if ok {
		r.calls[endpoint]++
	}
	r.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoService, endpoint)
	}
	return svc()
}

// NewElement builds an AXML-class resource view for an element that
// embeds a service call. Its group sequence lazily evaluates to
// ⟨V_sc⟩ before invocation and ⟨V_sc, V_scresult⟩ after the (memoized)
// invocation succeeds — matching the paper's document rewrite where the
// service result is inserted next to the <sc> element.
//
// name is the element name (e.g. "dep"); endpoint is the service call
// its <sc> child carries. onErr, when non-nil, observes invocation and
// parse failures; the view then exposes only ⟨V_sc⟩.
func NewElement(name, endpoint string, reg *Registry, onErr func(error)) core.ResourceView {
	scView := (&core.StaticView{
		VName:    "sc",
		VClass:   core.ClassServiceCall,
		VContent: core.StringContent(endpoint),
	})
	return &core.LazyView{
		VName:  name,
		VClass: core.ClassActiveXML,
		GroupFn: func() core.Group {
			result, err := reg.Invoke(endpoint)
			if err != nil {
				if onErr != nil {
					onErr(err)
				}
				return core.SeqGroup(scView)
			}
			doc, err := xmlkit.Parse(strings.NewReader(result))
			if err != nil {
				if onErr != nil {
					onErr(err)
				}
				return core.SeqGroup(scView)
			}
			dv, err := xmlkit.ToViews(doc)
			if err != nil {
				if onErr != nil {
					onErr(err)
				}
				return core.SeqGroup(scView)
			}
			resultView := &core.StaticView{
				VName:  "scresult",
				VClass: core.ClassServiceCallJSON,
				VGroup: dv.Group(),
			}
			return core.SeqGroup(scView, resultView)
		},
	}
}
