// Package convert implements the Content2iDM Converter module of §5.2 of
// the iDM paper: converters that take content components (XML, LaTeX)
// and generate resource view subgraphs reflecting the structural
// information inside the file. The registry dispatches by file name.
package convert

import (
	"strings"

	"repro/internal/core"
	"repro/internal/latex"
	"repro/internal/sources"
	"repro/internal/xmlkit"
)

// Converter turns raw content into a resource view subgraph.
type Converter interface {
	// Name identifies the converter ("xml2idm", "latex2idm").
	Name() string
	// Matches reports whether the converter applies to an item with the
	// given name (typically by extension).
	Matches(name string) bool
	// Convert parses data and returns the derived subgraph, or an error
	// for malformed content.
	Convert(data []byte) ([]core.ResourceView, error)
}

// XML converts .xml files to xmldoc/xmlelem/xmltext view subgraphs
// (§3.3 of the paper).
type XML struct{}

// Name implements Converter.
func (XML) Name() string { return "xml2idm" }

// Matches implements Converter.
func (XML) Matches(name string) bool { return strings.HasSuffix(strings.ToLower(name), ".xml") }

// Convert implements Converter.
func (XML) Convert(data []byte) ([]core.ResourceView, error) {
	doc, err := xmlkit.ParseString(string(data))
	if err != nil {
		return nil, err
	}
	dv, err := xmlkit.ToViews(doc)
	if err != nil {
		return nil, err
	}
	return []core.ResourceView{dv}, nil
}

// LaTeX converts .tex files to latex_* view subgraphs, including the
// \ref cross edges (§2.3 of the paper; the LaTeX2iDM converter the
// acknowledgements credit).
type LaTeX struct{}

// Name implements Converter.
func (LaTeX) Name() string { return "latex2idm" }

// Matches implements Converter.
func (LaTeX) Matches(name string) bool { return strings.HasSuffix(strings.ToLower(name), ".tex") }

// Convert implements Converter.
func (LaTeX) Convert(data []byte) ([]core.ResourceView, error) {
	d, err := latex.Parse(string(data))
	if err != nil {
		return nil, err
	}
	return latex.ToViews(d), nil
}

// Registry is an ordered list of converters; the first match wins.
type Registry struct {
	converters []Converter
	// OnError, when set, observes conversion failures (malformed
	// content is tolerated: the view simply keeps an empty subgraph).
	OnError func(name string, err error)
}

// NewRegistry returns a registry with the given converters.
func NewRegistry(cs ...Converter) *Registry { return &Registry{converters: cs} }

// Default returns a registry with the XML and LaTeX converters — the two
// the paper's prototype provides.
func Default() *Registry { return NewRegistry(XML{}, LaTeX{}) }

// Register appends a converter.
func (r *Registry) Register(c Converter) { r.converters = append(r.converters, c) }

// Names lists the registered converter names.
func (r *Registry) Names() []string {
	out := make([]string, len(r.converters))
	for i, c := range r.converters {
		out[i] = c.Name()
	}
	return out
}

// Func returns the registry as the ConvertFunc plugins consume.
func (r *Registry) Func() sources.ConvertFunc {
	return func(name string, data []byte) []core.ResourceView {
		for _, c := range r.converters {
			if !c.Matches(name) {
				continue
			}
			views, err := c.Convert(data)
			if err != nil {
				if r.OnError != nil {
					r.OnError(name, err)
				}
				return nil
			}
			return views
		}
		return nil
	}
}
