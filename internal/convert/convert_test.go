package convert

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestXMLConverter(t *testing.T) {
	c := XML{}
	if c.Name() != "xml2idm" {
		t.Errorf("name = %q", c.Name())
	}
	if !c.Matches("data.xml") || !c.Matches("DATA.XML") || c.Matches("data.tex") {
		t.Error("Matches by extension failed")
	}
	views, err := c.Convert([]byte("<a><b>x</b></a>"))
	if err != nil || len(views) != 1 || views[0].Class() != core.ClassXMLDoc {
		t.Errorf("convert = %v, %v", views, err)
	}
	if _, err := c.Convert([]byte("<bad")); err == nil {
		t.Error("malformed XML accepted")
	}
}

func TestLaTeXConverter(t *testing.T) {
	c := LaTeX{}
	if !c.Matches("paper.tex") || c.Matches("paper.xml") {
		t.Error("Matches by extension failed")
	}
	views, err := c.Convert([]byte("\\section{A}\nbody"))
	if err != nil || len(views) == 0 {
		t.Fatalf("convert = %v, %v", views, err)
	}
	if _, err := c.Convert([]byte("\\begin{figure} unclosed")); err == nil {
		t.Error("malformed LaTeX accepted")
	}
}

func TestRegistryDispatch(t *testing.T) {
	fn := Default().Func()
	if got := fn("a.xml", []byte("<a/>")); len(got) != 1 {
		t.Errorf("xml dispatch = %v", got)
	}
	if got := fn("a.tex", []byte("\\section{S}\ntext")); len(got) == 0 {
		t.Errorf("tex dispatch = %v", got)
	}
	if got := fn("a.jpg", []byte{1, 2, 3}); got != nil {
		t.Errorf("jpg should not convert: %v", got)
	}
}

func TestRegistryOnError(t *testing.T) {
	r := Default()
	var failedName string
	r.OnError = func(name string, err error) { failedName = name }
	fn := r.Func()
	if got := fn("bad.xml", []byte("<unclosed")); got != nil {
		t.Errorf("malformed content yielded views: %v", got)
	}
	if failedName != "bad.xml" {
		t.Errorf("OnError saw %q", failedName)
	}
}

func TestRegistryNames(t *testing.T) {
	names := strings.Join(Default().Names(), ",")
	if names != "xml2idm,latex2idm" {
		t.Errorf("names = %q", names)
	}
}

func TestRegistryFirstMatchWins(t *testing.T) {
	r := NewRegistry(XML{}, XML{})
	r.Register(LaTeX{})
	fn := r.Func()
	if got := fn("x.tex", []byte("\\section{A}\nb")); len(got) == 0 {
		t.Error("later converter not reached")
	}
}
