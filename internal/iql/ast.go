package iql

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Query is the root of a parsed iQL query: a path expression, a bare
// predicate over all views, a union, or a join.
type Query interface {
	fmt.Stringer
	queryNode()
}

// Axis selects how a path step relates to the previous one.
type Axis int

// Path axes.
const (
	// Child steps to directly related views (V_i → V_k), written '/'.
	Child Axis = iota
	// Descendant steps to indirectly related views (V_i →* V_k),
	// written '//'.
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Step is one step of a path expression: an axis, an optional name
// pattern ('*' and '?' wildcards; empty means "any name"), and an
// optional predicate.
type Step struct {
	Axis Axis
	// Pattern is the name pattern; "" and "*" both match any view.
	Pattern string
	// Pred is the bracketed predicate, or nil.
	Pred Expr
}

// Matches reports whether the step's pattern is unconstrained.
func (s Step) AnyName() bool { return s.Pattern == "" || s.Pattern == "*" }

func (s Step) String() string {
	var b strings.Builder
	b.WriteString(s.Axis.String())
	b.WriteString(s.Pattern)
	if s.Pred != nil {
		fmt.Fprintf(&b, "[%s]", s.Pred)
	}
	return b.String()
}

// PathQuery is a path expression: a sequence of steps.
type PathQuery struct {
	Steps []Step
}

func (q *PathQuery) queryNode() {}
func (q *PathQuery) String() string {
	var b strings.Builder
	for _, s := range q.Steps {
		b.WriteString(s.String())
	}
	return b.String()
}

// PredQuery applies a predicate to every view in the dataspace — the
// form of bare keyword queries such as `"Donald Knuth"`.
type PredQuery struct {
	Pred Expr
}

func (q *PredQuery) queryNode()     {}
func (q *PredQuery) String() string { return q.Pred.String() }

// UnionQuery is union(q1, q2, ...): the duplicate-free union of results.
type UnionQuery struct {
	Args []Query
}

func (q *UnionQuery) queryNode() {}
func (q *UnionQuery) String() string {
	parts := make([]string, len(q.Args))
	for i, a := range q.Args {
		parts[i] = a.String()
	}
	return "union( " + strings.Join(parts, ", ") + " )"
}

// FieldKind selects which part of a resource view a join field reads.
type FieldKind int

// Join field kinds.
const (
	FieldName FieldKind = iota
	FieldClass
	FieldTupleAttr
)

// FieldRef is a join operand such as A.name or B.tuple.label.
type FieldRef struct {
	Alias string
	Kind  FieldKind
	// Attr is the tuple attribute name for FieldTupleAttr.
	Attr string
}

func (f FieldRef) String() string {
	switch f.Kind {
	case FieldName:
		return f.Alias + ".name"
	case FieldClass:
		return f.Alias + ".class"
	default:
		return f.Alias + ".tuple." + f.Attr
	}
}

// JoinQuery is join(q1 as A, q2 as B, A.f = B.g): the equi-join of two
// result sets on view fields (§5.1 mentions user-defined joins; Q7 and
// Q8 of the evaluation use this form).
type JoinQuery struct {
	Left    Query
	LeftAs  string
	Right   Query
	RightAs string
	On      [2]FieldRef // left operand, right operand (aliases resolved)
}

func (q *JoinQuery) queryNode() {}
func (q *JoinQuery) String() string {
	return fmt.Sprintf("join( %s as %s, %s as %s, %s = %s )",
		q.Left, q.LeftAs, q.Right, q.RightAs, q.On[0], q.On[1])
}

// DeleteQuery is the update statement `delete <query>`: the views
// matched by the inner query are removed from their underlying data
// sources (write-through, via sources.Mutator). Engines are read-only;
// deletion is orchestrated by the PDSMS facade.
type DeleteQuery struct {
	Inner Query
}

func (q *DeleteQuery) queryNode()     {}
func (q *DeleteQuery) String() string { return "delete " + q.Inner.String() }

// Expr is a boolean predicate expression evaluated per view.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// AndExpr is a conjunction.
type AndExpr struct{ L, R Expr }

func (e *AndExpr) exprNode()      {}
func (e *AndExpr) String() string { return fmt.Sprintf("%s and %s", e.L, e.R) }

// OrExpr is a disjunction.
type OrExpr struct{ L, R Expr }

func (e *OrExpr) exprNode()      {}
func (e *OrExpr) String() string { return fmt.Sprintf("(%s or %s)", e.L, e.R) }

// NotExpr is a negation.
type NotExpr struct{ E Expr }

func (e *NotExpr) exprNode()      {}
func (e *NotExpr) String() string { return fmt.Sprintf("not %s", e.E) }

// quoteIQL renders a string literal in iQL notation, escaping only the
// quote and backslash characters (the lexer's escape rules).
func quoteIQL(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		if r == '"' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('"')
	return b.String()
}

// PhraseExpr holds a keyword phrase matched against the content
// component (consecutive tokens).
type PhraseExpr struct{ Phrase string }

func (e *PhraseExpr) exprNode()      {}
func (e *PhraseExpr) String() string { return quoteIQL(e.Phrase) }

// ClassExpr holds a class predicate: class="latex_section". A view
// matches when its class is the named class or a specialization of it.
type ClassExpr struct{ Class string }

func (e *ClassExpr) exprNode()      {}
func (e *ClassExpr) String() string { return "class=" + quoteIQL(e.Class) }

// HasExpr is an existence predicate on a relative path — the "graph
// branching operations" of §5.1: `//PIM[has(//figure*)]` selects PIM
// views from which some view matching the branch path is reachable.
// The branch is evaluated relative to the candidate view (descendant
// axis follows indirect relations, child axis direct ones).
type HasExpr struct {
	Steps []Step
}

func (e *HasExpr) exprNode() {}
func (e *HasExpr) String() string {
	var b strings.Builder
	b.WriteString("has(")
	for _, s := range e.Steps {
		b.WriteString(s.String())
	}
	b.WriteString(")")
	return b.String()
}

// CmpOp is a comparison operator in attribute predicates.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// CmpExpr compares a tuple-component attribute against a literal, e.g.
// size > 42000 or lastmodified < yesterday().
type CmpExpr struct {
	Attr  string
	Op    CmpOp
	Value core.Value
	// ValueText preserves the literal for String().
	ValueText string
}

func (e *CmpExpr) exprNode() {}
func (e *CmpExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.Attr, e.Op, e.ValueText)
}
