package iql

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/tupleindex"
)

// StatsProvider is the optional Store extension the cost-based planner
// consults for cheap cardinality estimates. Every method must be O(1)
// or O(log n) against index metadata (posting-list lengths, column
// spans, class-member counts) — estimates are read before execution, so
// an estimate that costs as much as the lookup it predicts is useless.
// Estimates are upper bounds, never exact guarantees: the planner uses
// them to order work and pick strategies, and execution stays exact
// regardless of estimation error.
type StatsProvider interface {
	// EstimatePhrase bounds the number of views whose content contains
	// the phrase (min posting-list length over the phrase's tokens).
	EstimatePhrase(phrase string) int
	// EstimateClass bounds the number of views in the class or a
	// specialization of it.
	EstimateClass(class string) int
	// EstimateNamePattern bounds the number of views whose name matches
	// the pattern. ok is false when the pattern needs a scan to count
	// (wildcards); exact-name patterns answer from the name replica's
	// exact-match lane in O(1).
	EstimateNamePattern(pattern string) (n int, ok bool)
	// EstimateTuple bounds the number of views whose attribute
	// satisfies (op, value), from the sorted column span.
	EstimateTuple(attr string, op tupleindex.Op, value core.Value) int
	// EstimateFanout bounds the number of child edges leaving the given
	// views (the cost of one '/' expansion step).
	EstimateFanout(oids []catalog.OID) int
	// EstimateReach bounds the number of views reachable from the given
	// views through group edges (the cost of one '//' expansion),
	// capped at the store's view count.
	EstimateReach(oids []catalog.OID) int
}

// Cost model: coarse per-item work units the planner uses to compare
// strategies and to decide when a stage carries enough work to be worth
// fanning out. The absolute scale is arbitrary; one unit is roughly one
// memoized bitset probe.
const (
	// costBitsetProbe is a phrase/class membership test against a
	// memoized index set.
	costBitsetProbe = 1
	// costNameMatch is one wildcard match against a replicated name.
	costNameMatch = 4
	// costTupleFetch is one tuple-replica fetch plus a comparison.
	costTupleFetch = 16
	// costHasBranch is one has()-branch expansion (itself a bounded
	// sub-query).
	costHasBranch = 256
	// costChildEdge is traversing one group-replica edge.
	costChildEdge = 2
	// costVerifyAncestor is verifying one backward candidate that DOES
	// have a matching ancestor: the walk exits as soon as the ancestor
	// is found.
	costVerifyAncestor = 64
	// costVerifyMiss is the extra cost of a backward candidate whose
	// verification fails: proving the absence of a matching ancestor
	// walks the candidate's entire ancestor closure once (it is not
	// repeated per step), which on deep or DAG-shaped stores dwarfs the
	// early-exit hit cost. Candidates outside the first anchor's reach
	// are guaranteed misses, which is how the planner estimates how many
	// candidates pay this.
	costVerifyMiss = 64
)

// parCrossover is the estimated work (items × per-item cost units) a
// stage must carry before the adaptive planner fans it out. Calibrated
// against this engine's stage overhead: spawning and joining a worker
// group costs a few microseconds, one cost unit is a few nanoseconds,
// so below ~16k units the goroutine and merge overhead exceeds the work
// saved (the measured crossover sits between 10k and 50k units; see
// docs/IQL.md "Cost-based planning").
const parCrossover = 1 << 14

// exprCost estimates the per-view work units of evaluating a predicate.
func exprCost(e Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case *AndExpr:
		return exprCost(x.L) + exprCost(x.R)
	case *OrExpr:
		return exprCost(x.L) + exprCost(x.R)
	case *NotExpr:
		return exprCost(x.E)
	case *PhraseExpr:
		return costBitsetProbe
	case *ClassExpr:
		return costBitsetProbe
	case *HasExpr:
		return costHasBranch
	case *CmpExpr:
		if x.Attr == "name" {
			return costNameMatch
		}
		return costTupleFetch
	default:
		return costTupleFetch
	}
}

// stepMatchCost estimates the per-view work units of matchStep for one
// step (name pattern plus full predicate).
func stepMatchCost(s Step) int {
	cost := 0
	if !s.AnyName() {
		cost += costNameMatch
	}
	cost += exprCost(s.Pred)
	if cost < 1 {
		cost = 1
	}
	return cost
}

// estimateStep bounds the number of views matching one step using only
// statistics (no index materialization): the minimum over the step's
// index-supported constraints, or the store's view count when nothing
// constrains.
func (c *evalCtx) estimateStep(s Step) int {
	est := c.store.Count()
	if c.stats == nil {
		return est
	}
	apply := func(n int) {
		if n < est {
			est = n
		}
	}
	if !s.AnyName() {
		if n, ok := c.stats.EstimateNamePattern(s.Pattern); ok {
			apply(n)
		}
	}
	for _, conj := range conjuncts(s.Pred) {
		switch x := conj.(type) {
		case *PhraseExpr:
			apply(c.stats.EstimatePhrase(x.Phrase))
		case *ClassExpr:
			apply(c.stats.EstimateClass(x.Class))
		case *CmpExpr:
			if x.Attr == "name" {
				if x.Op == OpEq && x.Value.Kind == core.DomainString {
					if n, ok := c.stats.EstimateNamePattern(x.Value.Str); ok {
						apply(n)
					}
				}
				continue
			}
			if op, ok := tupleOp(x.Op); ok {
				apply(c.stats.EstimateTuple(x.Attr, op, x.Value))
			}
		}
	}
	if est < 0 {
		est = 0
	}
	return est
}

// estimateQuery bounds the number of result rows of a query node from
// statistics alone. Every path result matches the path's last step, so
// a path estimates as its final step; unions sum (capped at the view
// count); joins bound by the smaller input (a coarse equi-join
// heuristic — many-to-many joins can exceed it, and the bound is only
// used for ordering decisions, never for correctness). Results are
// memoized per AST node: union branches and join inputs may re-ask
// concurrently, so the memo shares the ctx memo lock.
func (c *evalCtx) estimateQuery(q Query) int {
	c.memoMu.RLock()
	n, ok := c.estimates[q]
	c.memoMu.RUnlock()
	if ok {
		return n
	}
	if n, ok := c.shared.estimate(q, c.sharedVersion); ok {
		c.memoMu.Lock()
		c.estimates[q] = n
		c.memoMu.Unlock()
		return n
	}
	n = c.estimateQueryUncached(q)
	c.memoMu.Lock()
	c.estimates[q] = n
	c.memoMu.Unlock()
	c.shared.storeEstimate(q, c.sharedVersion, n)
	return n
}

func (c *evalCtx) estimateQueryUncached(q Query) int {
	switch x := q.(type) {
	case *PredQuery:
		return c.estimateStep(Step{Axis: Descendant, Pred: x.Pred})
	case *PathQuery:
		if len(x.Steps) == 0 {
			return 0
		}
		return c.estimateStep(x.Steps[len(x.Steps)-1])
	case *UnionQuery:
		sum := 0
		for _, a := range x.Args {
			sum += c.estimateQuery(a)
		}
		if total := c.store.Count(); sum > total {
			sum = total
		}
		return sum
	case *JoinQuery:
		l, r := c.estimateQuery(x.Left), c.estimateQuery(x.Right)
		if l < r {
			return l
		}
		return r
	default:
		return c.store.Count()
	}
}
