package iql

import (
	"testing"
	"time"
)

// FuzzParse asserts the iQL parser never panics and that any query it
// accepts renders to a string it accepts again (parse∘render fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`"Donald Knuth"`,
		`"Donald" and "Knuth"`,
		`[size > 42000 and lastmodified < yesterday()]`,
		`//Introduction[class="latex_section"]`,
		`//PIM//Introduction[class="latex_section" and "Mike Franklin"]`,
		`//papers//*Vision/*["Franklin"]`,
		`//VLDB200?//?onclusion*/*["systems"]`,
		`union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])`,
		`join( //a[class="texref"] as A, //b//figure* as B, A.name=B.tuple.label)`,
		`delete //[name = "*.tmp"]`,
		`//[class="folder" and has(//[class="figure"])]`,
		`[x < @12.06.2005]`,
		`//a[`, `"unclosed`, `@`, `!`, `//`, ``, `not not "x"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	now := func() time.Time { return time.Date(2005, 6, 15, 0, 0, 0, 0, time.UTC) }
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseWith(src, ParseOptions{Now: now})
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := ParseWith(rendered, ParseOptions{Now: now})
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("render not a fixpoint: %q → %q", rendered, q2.String())
		}
	})
}

// FuzzWildcardAgainstEval cross-checks that any parsed query evaluates
// without panicking on a small store under every expansion strategy.
func FuzzEval(f *testing.F) {
	for _, s := range []string{
		`//root//[class="figure"]`,
		`//*["Franklin"]`,
		`[size > 0]`,
		`//vldb.tex/*`,
		`//[has(/figure*)]`,
	} {
		f.Add(s)
	}
	store := paperStore()
	now := func() time.Time { return time.Date(2005, 6, 15, 0, 0, 0, 0, time.UTC) }
	f.Fuzz(func(t *testing.T, src string) {
		for _, exp := range []Expansion{ForwardExpansion, BackwardExpansion, AutoExpansion} {
			e := NewEngine(store, Options{Expansion: exp, Now: now, Budget: 1 << 14})
			e.Query(src) // must not panic; errors are fine
		}
	})
}
