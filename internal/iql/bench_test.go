package iql

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

const benchQuery = `join( //VLDB2006//*[class="texref"] as A, //VLDB2006//figure*[class="environment"] as B, A.name=B.tuple.label)`

func BenchmarkLex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseWith(benchQuery, ParseOptions{Now: fixedNow}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalPathQuery(b *testing.B) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	const q = `//PIM//Introduction[class="latex_section" and "Mike Franklin"]`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalJoin(b *testing.B) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	const q = `join( //[class="texref"] as A, //[class="figure"] as B, A.name = B.tuple.label )`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// wideStore builds a fanout tree of the given depth: the shape of Q8's
// intermediate-result blow-up (§7.2), where forward expansion drags
// thousands of views through each frontier.
func wideStore(fan, depth int) *fakeStore {
	f := newFakeStore()
	f.add(1, "root", core.ClassFolder, "", core.EmptyTuple())
	next := catalog.OID(2)
	level := []catalog.OID{1}
	rng := rand.New(rand.NewSource(8))
	for d := 0; d < depth; d++ {
		var nl []catalog.OID
		for _, p := range level {
			for i := 0; i < fan; i++ {
				content := ""
				if rng.Intn(50) == 0 {
					content = "franklin dataspaces"
				}
				f.add(next, fmt.Sprintf("n%d", next), core.ClassFile, content, core.EmptyTuple(), p)
				nl = append(nl, next)
				next++
			}
		}
		level = nl
	}
	return f
}

// BenchmarkQ8ShapedExpansion compares serial and parallel forward
// expansion over a Q8-shaped workload: a selective predicate at the end
// of a path whose descendant step materializes thousands of
// intermediates. Sub-benchmarks share one store so ns/op is directly
// comparable; result counts are asserted identical.
func BenchmarkQ8ShapedExpansion(b *testing.B) {
	f := wideStore(8, 4) // 4681 views
	const q = `//root//*["franklin"]`
	serial := NewEngine(f, Options{Now: fixedNow, Parallelism: 1})
	ref, err := serial.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		e := NewEngine(f, Options{Now: fixedNow, Parallelism: par})
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := e.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if r.Count() != ref.Count() {
					b.Fatalf("count = %d, want %d", r.Count(), ref.Count())
				}
			}
		})
	}
}
