package iql

import (
	"testing"
)

const benchQuery = `join( //VLDB2006//*[class="texref"] as A, //VLDB2006//figure*[class="environment"] as B, A.name=B.tuple.label)`

func BenchmarkLex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseWith(benchQuery, ParseOptions{Now: fixedNow}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalPathQuery(b *testing.B) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	const q = `//PIM//Introduction[class="latex_section" and "Mike Franklin"]`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalJoin(b *testing.B) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	const q = `join( //[class="texref"] as A, //[class="figure"] as B, A.name = B.tuple.label )`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
