package iql

import "sync"

// planCache carries planner state across executions of one engine. Two
// things are worth keeping: the parsed AST of each query string (stable
// whenever parsing did not consult the clock), and the cardinality
// estimates the cost-based planner derives per AST node. Estimates are
// only valid for one dataspace version — the cache drops them whenever
// the store's version moves — while parses depend on nothing but the
// source text, so they survive versions.
//
// Re-running the same query is the common case this serves: interactive
// re-evaluation, continuous queries and benchmarks all repeat identical
// strings, and on microsecond-scale queries the parse plus the
// planner's estimate walk are a measurable fraction of the total.
// All methods are nil-safe: a nil *planCache disables caching.
type planCache struct {
	mu sync.RWMutex
	// parsed maps source text to its clock-independent AST.
	parsed map[string]Query
	// version tags est; est is dropped when the store version moves.
	version uint64
	est     map[Query]int
}

// Caps keep both maps bounded under adversarial workloads (fuzzing,
// ad-hoc exploration): when full, the map is dropped and rebuilt rather
// than evicted entry by entry.
const (
	planCacheMaxParsed    = 1024
	planCacheMaxEstimates = 4096
)

// parsedFor returns the cached AST for src, if any.
func (pc *planCache) parsedFor(src string) (Query, bool) {
	if pc == nil {
		return nil, false
	}
	pc.mu.RLock()
	q, ok := pc.parsed[src]
	pc.mu.RUnlock()
	return q, ok
}

// storeParsed caches the AST of a clock-independent parse.
func (pc *planCache) storeParsed(src string, q Query) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	if len(pc.parsed) >= planCacheMaxParsed {
		pc.parsed = nil
	}
	if pc.parsed == nil {
		pc.parsed = make(map[string]Query)
	}
	pc.parsed[src] = q
	pc.mu.Unlock()
}

// estimate returns the cached cardinality estimate for q at dataspace
// version v, if any.
func (pc *planCache) estimate(q Query, v uint64) (int, bool) {
	if pc == nil {
		return 0, false
	}
	pc.mu.RLock()
	var (
		n  int
		ok bool
	)
	if pc.version == v {
		n, ok = pc.est[q]
	}
	pc.mu.RUnlock()
	return n, ok
}

// storeEstimate caches q's estimate for dataspace version v, dropping
// any estimates from older versions.
func (pc *planCache) storeEstimate(q Query, v uint64, n int) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	if pc.version != v || len(pc.est) >= planCacheMaxEstimates {
		pc.version = v
		pc.est = nil
	}
	if pc.est == nil {
		pc.est = make(map[Query]int)
	}
	pc.est[q] = n
	pc.mu.Unlock()
}
