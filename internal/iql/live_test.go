package iql

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

func liveView() core.ResourceView {
	return core.NewView("report.txt", core.ClassFile).
		WithTuple(core.TupleComponent{
			Schema: core.FSSchema,
			Tuple: core.Tuple{core.Int(5000),
				core.Time(time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)),
				core.Time(time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC))},
		}).
		WithContent(core.StringContent("the indexing time improved a lot"))
}

func mustExpr(t *testing.T, src string) Expr {
	t.Helper()
	q, err := ParseWith(src, ParseOptions{Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	return q.(*PredQuery).Pred
}

func TestMatchViewPhrases(t *testing.T) {
	v := liveView()
	reg := core.StandardRegistry()
	cases := []struct {
		expr string
		want bool
	}{
		{`"indexing time"`, true},
		{`"time indexing"`, false},
		{`"indexing" and "improved"`, true},
		{`"indexing" and "missing"`, false},
		{`"missing" or "improved"`, true},
		{`not "missing"`, true},
		{`[size > 4200]`, true},
		{`[size > 9999]`, false},
		{`[lastmodified < @12.06.2005]`, true},
		{`[class="file"]`, true},
		{`[class="folder"]`, false},
		{`[name = "*.txt"]`, true},
		{`[name != "*.txt"]`, false},
		{`[owner = "nobody"]`, false},
	}
	for _, c := range cases {
		if got := MatchView(mustExpr(t, c.expr), v, reg.IsA, 0); got != c.want {
			t.Errorf("MatchView(%s) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestMatchViewClassSpecialization(t *testing.T) {
	reg := core.StandardRegistry()
	v := core.NewView("a.xml", core.ClassXMLFile)
	if !MatchView(mustExpr(t, `[class="file"]`), v, reg.IsA, 0) {
		t.Error("xmlfile should match class=file via is-a")
	}
	// Without an isA function, only exact classes match.
	if MatchView(mustExpr(t, `[class="file"]`), v, nil, 0) {
		t.Error("exact-match fallback matched a subclass")
	}
	if !MatchView(mustExpr(t, `[class="xmlfile"]`), v, nil, 0) {
		t.Error("exact class did not match")
	}
}

func TestMatchViewInfiniteContentNeverMatches(t *testing.T) {
	v := (&core.StaticView{VName: "stream"}).
		WithContent(core.InfiniteContent(func() io.ReadCloser {
			return io.NopCloser(endless{})
		}))
	if MatchView(mustExpr(t, `"anything"`), v, nil, 0) {
		t.Error("infinite content matched a phrase")
	}
}

type endless struct{}

func (endless) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	return len(p), nil
}

func TestMatchViewContentTruncation(t *testing.T) {
	// A match beyond the content cap is not seen.
	big := make([]byte, 2048)
	for i := range big {
		big[i] = 'x'
	}
	v := (&core.StaticView{VName: "big"}).
		WithContent(core.StringContent(string(big) + " needle"))
	if MatchView(mustExpr(t, `"needle"`), v, nil, 1024) {
		t.Error("match found beyond the truncation limit")
	}
	if !MatchView(mustExpr(t, `"needle"`), v, nil, 1<<20) {
		t.Error("match not found within the limit")
	}
}
