package iql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

func TestQueryTracedSpanTree(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow, Parallelism: 1})
	res, tr, err := e.QueryTraced(`//Introduction["Franklin"]//[class="texref"]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("rows = %d, want 1", res.Count())
	}
	root := tr.Root()
	for _, stage := range []string{"parse", "plan", "eval"} {
		if root.Find(stage) == nil {
			t.Errorf("trace missing %q stage:\n%s", stage, tr.Render())
		}
	}
	if root.FindPrefix("forward expansion") == nil {
		t.Errorf("trace missing forward expansion span:\n%s", tr.Render())
	}
	if root.FindPrefix("step 2") == nil {
		t.Errorf("trace missing step span:\n%s", tr.Render())
	}
	if root.FindPrefix("residual filter") == nil {
		t.Errorf("trace missing residual filter span:\n%s", tr.Render())
	}
	out := tr.Render()
	if !strings.Contains(out, `query //Introduction["Franklin"]//[class="texref"]`) {
		t.Errorf("render missing query name:\n%s", out)
	}
}

func TestQueryTracedStrategyChoice(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Expansion: AutoExpansion, Now: fixedNow, Parallelism: 1})
	_, tr, err := e.QueryTraced(`//Introduction["Franklin"]//[class="texref"]`)
	if err != nil {
		t.Fatal(err)
	}
	cs := tr.Root().FindPrefix("strategy choice")
	if cs == nil {
		t.Fatalf("trace missing strategy choice span:\n%s", tr.Render())
	}
	var chosen string
	for _, a := range cs.Attrs() {
		if a.Key == "chosen" {
			chosen = a.Value
		}
	}
	if chosen != "forward" && chosen != "backward" {
		t.Errorf("strategy choice chose %q", chosen)
	}
}

// flatStore builds a flat dataspace wide enough (>= parThreshold
// candidates) that data-parallel stages actually fan out.
func flatStore(n int) *fakeStore {
	f := newFakeStore()
	f.add(1, "root", core.ClassFolder, "", core.EmptyTuple())
	for i := 0; i < n; i++ {
		f.add(catalog.OID(2+i), fmt.Sprintf("doc%03d", i), core.ClassLatexSection,
			"wide blob content", core.EmptyTuple(), 1)
	}
	return f
}

func TestQueryTracedWorkerSpans(t *testing.T) {
	f := flatStore(4 * parThreshold)
	e := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow, Parallelism: 4})
	res, tr, err := e.QueryTraced(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 4*parThreshold {
		t.Fatalf("rows = %d, want %d", res.Count(), 4*parThreshold)
	}
	rf := tr.Root().FindPrefix("residual filter")
	if rf == nil {
		t.Fatalf("trace missing residual filter span:\n%s", tr.Render())
	}
	workers := 0
	for _, c := range rf.Children() {
		if strings.HasPrefix(c.Name(), "worker ") {
			workers++
		}
	}
	if workers < 2 {
		t.Errorf("residual filter recorded %d worker spans, want >= 2:\n%s", workers, tr.Render())
	}
}

func TestQueryTracedSerialHasNoWorkerSpans(t *testing.T) {
	f := flatStore(4 * parThreshold)
	e := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow, Parallelism: 1})
	_, tr, err := e.QueryTraced(`//doc*[ "blob" ]`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tr.Render(), "worker ") {
		t.Errorf("serial query recorded worker spans:\n%s", tr.Render())
	}
}

func TestQueryTracedParseError(t *testing.T) {
	e := NewEngine(paperStore(), Options{Now: fixedNow})
	_, tr, err := e.QueryTraced(`//[unclosed`)
	if err == nil {
		t.Fatal("want parse error")
	}
	ps := tr.Root().Find("parse")
	if ps == nil {
		t.Fatalf("trace missing parse span:\n%s", tr.Render())
	}
	found := false
	for _, a := range ps.Attrs() {
		if a.Key == "error" {
			found = true
		}
	}
	if !found {
		t.Error("parse span missing error attribute")
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow, Metrics: reg})
	if _, err := e.Query(`"Franklin"`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`//[broken`); err == nil {
		t.Fatal("want parse error")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["iql_queries_total"]; got != 2 {
		t.Errorf("iql_queries_total = %d, want 2", got)
	}
	if got := snap.Counters["iql_query_errors_total"]; got != 1 {
		t.Errorf("iql_query_errors_total = %d, want 1", got)
	}
	if snap.Counters["iql_rows_total"] == 0 {
		t.Error("iql_rows_total did not record")
	}
	if snap.Histograms["iql_query_ns"].Count != 1 {
		t.Errorf("iql_query_ns count = %d, want 1", snap.Histograms["iql_query_ns"].Count)
	}
	if snap.Histograms["iql_parse_ns"].Count != 2 {
		t.Errorf("iql_parse_ns count = %d, want 2", snap.Histograms["iql_parse_ns"].Count)
	}
	if snap.Counters["iql_index_accesses_total"] == 0 {
		t.Error("iql_index_accesses_total did not record")
	}
}
