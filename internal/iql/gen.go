package iql

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocab is the vocabulary the query generator draws from. Every entry
// should be meaningful for the dataspace under test (names that occur,
// phrases that are indexed, classes that are registered) so generated
// queries exercise real index paths rather than returning empty sets.
type Vocab struct {
	// Names are view names; the generator derives wildcard patterns
	// ('*', '?') from them. They must lex as one iQL word (no spaces).
	Names []string
	// Phrases are content phrases (may contain spaces; quoted on use).
	Phrases []string
	// Classes are resource view class names.
	Classes []string
	// IntAttrs are tuple attributes with integer values (e.g. size).
	IntAttrs []string
	// DateAttrs are tuple attributes with time values.
	DateAttrs []string
	// StrAttrs are tuple attributes with string values; values are drawn
	// from Names.
	StrAttrs []string
}

// DefaultVocab matches the paper-example dataspace used across the test
// suite (folders, a LaTeX paper tree, figure labels).
func DefaultVocab() Vocab {
	return Vocab{
		Names: []string{"root", "papers", "VLDB2006", "vldb.tex", "document",
			"Introduction", "GrandVision", "figure", "PIM", "fig:index"},
		Phrases:   []string{"Mike Franklin", "dataspaces", "Vision", "systems", "Indexing", "PIM"},
		Classes:   []string{"folder", "file", "latexfile", "latex_section", "texref", "figure"},
		IntAttrs:  []string{"size"},
		DateAttrs: []string{"lastmodified", "created"},
		StrAttrs:  []string{"label"},
	}
}

// Gen is a grammar-driven iQL query generator: every production of the
// language (paths with both axes, wildcard name steps, predicate
// conjunctions, has(), class and attribute comparisons, unions, joins)
// is reachable, and a given seed replays the same query sequence. It
// drives the differential test harness that asserts serial and parallel
// evaluation agree.
type Gen struct {
	rng *rand.Rand
	v   Vocab
}

// NewGen returns a generator over v seeded with seed.
func NewGen(seed int64, v Vocab) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), v: v}
}

// Query generates one syntactically valid iQL query.
func (g *Gen) Query() string {
	switch p := g.rng.Float64(); {
	case p < 0.55:
		return g.path(4)
	case p < 0.70:
		return "[" + g.expr(2) + "]"
	case p < 0.85:
		return g.union()
	default:
		return g.join()
	}
}

func (g *Gen) pick(list []string) string {
	if len(list) == 0 {
		return "x"
	}
	return list[g.rng.Intn(len(list))]
}

// pattern derives a name pattern from the vocabulary: the exact name, a
// '*'/'?' mutation of it, or the match-all star.
func (g *Gen) pattern() string {
	name := g.pick(g.v.Names)
	r := []rune(name)
	switch p := g.rng.Float64(); {
	case p < 0.35:
		return name
	case p < 0.50:
		return "*"
	case p < 0.65: // prefix*
		cut := 1 + g.rng.Intn(len(r))
		return string(r[:cut]) + "*"
	case p < 0.80: // *suffix
		cut := g.rng.Intn(len(r))
		return "*" + string(r[cut:])
	case p < 0.90: // one '?' hole
		i := g.rng.Intn(len(r))
		r[i] = '?'
		return string(r)
	default: // *infix*
		if len(r) < 3 {
			return name
		}
		lo := g.rng.Intn(len(r) - 1)
		hi := lo + 1 + g.rng.Intn(len(r)-lo-1)
		return "*" + string(r[lo:hi]) + "*"
	}
}

// path generates a path query with up to maxSteps steps.
func (g *Gen) path(maxSteps int) string {
	steps := 1 + g.rng.Intn(maxSteps)
	var b strings.Builder
	for i := 0; i < steps; i++ {
		if g.rng.Float64() < 0.5 {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		// A step may leave the name pattern empty ("//[pred]" or a bare
		// axis), but not in a way that makes the whole query vacuous.
		hasName := g.rng.Float64() < 0.85 || i == 0
		if hasName {
			b.WriteString(g.pattern())
		}
		if g.rng.Float64() < 0.35 {
			b.WriteString("[" + g.expr(2) + "]")
		}
	}
	return b.String()
}

// expr generates a predicate expression with combinator depth at most d.
func (g *Gen) expr(d int) string {
	if d <= 0 || g.rng.Float64() < 0.45 {
		return g.leaf()
	}
	switch g.rng.Intn(3) {
	case 0:
		return g.expr(d-1) + " and " + g.expr(d-1)
	case 1:
		return g.expr(d-1) + " or " + g.expr(d-1)
	default:
		return "not " + g.expr(d-1)
	}
}

func (g *Gen) leaf() string {
	switch p := g.rng.Float64(); {
	case p < 0.35:
		return fmt.Sprintf("%q", g.pick(g.v.Phrases))
	case p < 0.55:
		return fmt.Sprintf("class=%q", g.pick(g.v.Classes))
	case p < 0.72 && len(g.v.IntAttrs) > 0:
		sizes := []string{"0", "1", "1024", "4096", "42000", "50000"}
		return fmt.Sprintf("%s %s %s", g.pick(g.v.IntAttrs), g.cmpOp(), g.pick(sizes))
	case p < 0.85 && len(g.v.DateAttrs) > 0:
		dates := []string{"@01.06.2005", "@10.06.2005", fmt.Sprintf("@%02d.06.2005", 1+g.rng.Intn(28)),
			"yesterday()", "today()", "now()"}
		return fmt.Sprintf("%s %s %s", g.pick(g.v.DateAttrs), g.cmpOp(), g.pick(dates))
	case p < 0.93 && len(g.v.StrAttrs) > 0:
		return fmt.Sprintf("%s = %q", g.pick(g.v.StrAttrs), g.pick(g.v.Names))
	default:
		return "has(" + g.path(2) + ")"
	}
}

func (g *Gen) cmpOp() string {
	return g.pick([]string{"=", "!=", "<", "<=", ">", ">="})
}

func (g *Gen) union() string {
	n := 2 + g.rng.Intn(2)
	parts := make([]string, n)
	for i := range parts {
		if g.rng.Float64() < 0.8 {
			parts[i] = g.path(3)
		} else {
			parts[i] = "[" + g.expr(1) + "]"
		}
	}
	return "union( " + strings.Join(parts, ", ") + " )"
}

func (g *Gen) join() string {
	field := func(alias string) string {
		switch p := g.rng.Float64(); {
		case p < 0.45:
			return alias + ".name"
		case p < 0.65:
			return alias + ".class"
		case p < 0.85 && len(g.v.StrAttrs) > 0:
			return alias + ".tuple." + g.pick(g.v.StrAttrs)
		default:
			attrs := append(append([]string{}, g.v.IntAttrs...), g.v.StrAttrs...)
			if len(attrs) == 0 {
				return alias + ".name"
			}
			return alias + ".tuple." + g.pick(attrs)
		}
	}
	return fmt.Sprintf("join( %s as A, %s as B, %s = %s )",
		g.path(2), g.path(2), field("A"), field("B"))
}
