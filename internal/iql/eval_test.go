package iql

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/textindex"
	"repro/internal/tupleindex"
)

// fakeStore is an in-memory Store for evaluator unit tests, backed by
// the real index structures.
type fakeStore struct {
	names    map[catalog.OID]string
	classes  map[catalog.OID]string
	children map[catalog.OID][]catalog.OID
	parents  map[catalog.OID][]catalog.OID
	content  *textindex.Index
	tuples   *tupleindex.Index
	reg      *core.Registry
	all      []catalog.OID
}

func newFakeStore() *fakeStore {
	return &fakeStore{
		names:    make(map[catalog.OID]string),
		classes:  make(map[catalog.OID]string),
		children: make(map[catalog.OID][]catalog.OID),
		parents:  make(map[catalog.OID][]catalog.OID),
		content:  textindex.New(),
		tuples:   tupleindex.New(),
		reg:      core.StandardRegistry(),
	}
}

func (f *fakeStore) add(oid catalog.OID, name, class, content string, tc core.TupleComponent, parents ...catalog.OID) {
	f.names[oid] = name
	f.classes[oid] = class
	if content != "" {
		f.content.Add(textindex.DocID(oid), content)
	}
	if !tc.IsEmpty() {
		f.tuples.Add(tupleindex.DocID(oid), tc)
	}
	for _, p := range parents {
		f.children[p] = append(f.children[p], oid)
		f.parents[oid] = append(f.parents[oid], p)
	}
	f.all = append(f.all, oid)
	sort.Slice(f.all, func(i, j int) bool { return f.all[i] < f.all[j] })
}

func (f *fakeStore) AllOIDs() []catalog.OID                 { return f.all }
func (f *fakeStore) Count() int                             { return len(f.all) }
func (f *fakeStore) NameOf(oid catalog.OID) string          { return f.names[oid] }
func (f *fakeStore) Children(oid catalog.OID) []catalog.OID { return f.children[oid] }
func (f *fakeStore) Parents(oid catalog.OID) []catalog.OID  { return f.parents[oid] }

func (f *fakeStore) Entry(oid catalog.OID) (catalog.Entry, error) {
	if _, ok := f.names[oid]; !ok {
		return catalog.Entry{}, catalog.ErrNotFound
	}
	return catalog.Entry{OID: oid, Name: f.names[oid], Class: f.classes[oid]}, nil
}

func (f *fakeStore) MatchNames(pattern string) []catalog.OID {
	var out []catalog.OID
	for _, oid := range f.all {
		if WildcardMatch(pattern, f.names[oid]) {
			out = append(out, oid)
		}
	}
	return out
}

func (f *fakeStore) ContentPhrase(phrase string) []catalog.OID {
	ids := f.content.Phrase(phrase)
	out := make([]catalog.OID, len(ids))
	for i, id := range ids {
		out[i] = catalog.OID(id)
	}
	return out
}

func (f *fakeStore) ContentPhraseFreqs(phrase string) map[catalog.OID]int {
	hits := f.content.PhraseHits(phrase)
	out := make(map[catalog.OID]int, len(hits))
	for _, h := range hits {
		out[catalog.OID(h.Doc)] = h.Freq
	}
	return out
}

func (f *fakeStore) TupleQuery(attr string, op tupleindex.Op, value core.Value) []catalog.OID {
	ids := f.tuples.Query(attr, op, value)
	out := make([]catalog.OID, len(ids))
	for i, id := range ids {
		out[i] = catalog.OID(id)
	}
	return out
}

func (f *fakeStore) Tuple(oid catalog.OID) (core.TupleComponent, bool) {
	return f.tuples.Tuple(tupleindex.DocID(oid))
}

func (f *fakeStore) OIDsInClass(class string) []catalog.OID {
	var out []catalog.OID
	for _, oid := range f.all {
		if c := f.classes[oid]; c != "" && f.reg.IsA(c, class) {
			out = append(out, oid)
		}
	}
	return out
}

// fakeStore implements StatsProvider so evaluator tests exercise the
// adaptive planner's estimate-driven paths. Estimates are computed
// fresh (the store is tiny), matching the contracts rvm implements.
var _ StatsProvider = (*fakeStore)(nil)

func (f *fakeStore) EstimatePhrase(phrase string) int {
	return f.content.PhraseCardUpper(phrase)
}

func (f *fakeStore) EstimateClass(class string) int {
	return len(f.OIDsInClass(class))
}

func (f *fakeStore) EstimateNamePattern(pattern string) (int, bool) {
	if strings.ContainsAny(pattern, "*?") {
		return 0, false
	}
	n := 0
	for _, name := range f.names {
		if strings.EqualFold(name, pattern) {
			n++
		}
	}
	return n, true
}

func (f *fakeStore) EstimateTuple(attr string, op tupleindex.Op, value core.Value) int {
	return f.tuples.CardEstimate(attr, op, value)
}

func (f *fakeStore) EstimateFanout(oids []catalog.OID) int {
	n := 0
	for _, oid := range oids {
		n += len(f.children[oid])
	}
	return n
}

func (f *fakeStore) EstimateReach(oids []catalog.OID) int {
	seen := make(map[catalog.OID]bool)
	frontier := append([]catalog.OID(nil), oids...)
	reach := 0
	for len(frontier) > 0 {
		var next []catalog.OID
		for _, oid := range frontier {
			for _, ch := range f.children[oid] {
				if !seen[ch] {
					seen[ch] = true
					reach++
					next = append(next, ch)
				}
			}
		}
		frontier = next
	}
	return reach
}

// paperStore builds a dataspace mirroring the paper's examples:
//
//	1 root
//	├── 2 papers (folder)
//	│    └── 3 VLDB2006 (folder)
//	│         └── 4 vldb.tex (latexfile, size 50000)
//	│              ├── 5 document
//	│              │    ├── 6 Introduction (latex_section, "... Mike Franklin ... dataspaces Vision ...")
//	│              │    │    └── 7 ref (texref, name fig:index) ──→ 9
//	│              │    └── 8 GrandVision (latex_section, "Franklin agrees")
//	│              └── 9 figure (class figure, label fig:index, "Indexing time plot")
//	└── 10 PIM (folder)
//	     └── 11 Introduction (latex_section, "PIM intro, Mike Franklin et al", size attr absent)
func paperStore() *fakeStore {
	f := newFakeStore()
	fsT := func(size int64, day int) core.TupleComponent {
		return core.TupleComponent{
			Schema: core.FSSchema,
			Tuple: core.Tuple{core.Int(size),
				core.Time(time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)),
				core.Time(time.Date(2005, 6, day, 0, 0, 0, 0, time.UTC))},
		}
	}
	labelT := func(label string) core.TupleComponent {
		return core.TupleComponent{
			Schema: core.Schema{{Name: "label", Domain: core.DomainString}},
			Tuple:  core.Tuple{core.String(label)},
		}
	}
	f.add(1, "root", core.ClassFolder, "", fsT(4096, 1))
	f.add(2, "papers", core.ClassFolder, "", fsT(4096, 1), 1)
	f.add(3, "VLDB2006", core.ClassFolder, "", fsT(4096, 2), 2)
	f.add(4, "vldb.tex", core.ClassLatexFile, "raw tex", fsT(50000, 10), 3)
	f.add(5, "document", core.ClassLatexDocument, "", core.EmptyTuple(), 4)
	f.add(6, "Introduction", core.ClassLatexSection,
		"This section thanks Mike Franklin for the dataspaces Vision", core.EmptyTuple(), 5)
	f.add(7, "fig:index", core.ClassTexRef, "", core.EmptyTuple(), 6)
	f.add(8, "GrandVision", core.ClassLatexSection, "Franklin agrees with systems", core.EmptyTuple(), 5)
	f.add(9, "figure", core.ClassFigure, "Indexing time plot", labelT("fig:index"), 4)
	f.children[7] = append(f.children[7], 9) // texref cross edge
	f.parents[9] = append(f.parents[9], 7)
	f.add(10, "PIM", core.ClassFolder, "", fsT(4096, 3), 1)
	f.add(11, "Introduction", core.ClassLatexSection,
		"PIM intro, thanks to Mike Franklin et al", core.EmptyTuple(), 10)
	return f
}

func engines(f *fakeStore) map[string]*Engine {
	return map[string]*Engine{
		"forward":  NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow}),
		"backward": NewEngine(f, Options{Expansion: BackwardExpansion, Now: fixedNow}),
		"auto":     NewEngine(f, Options{Expansion: AutoExpansion, Now: fixedNow}),
	}
}

// runAll runs the query under every expansion strategy and checks they
// agree, returning the forward result.
func runAll(t *testing.T, f *fakeStore, src string) *Result {
	t.Helper()
	var ref *Result
	for name, e := range engines(f) {
		r, err := e.Query(src)
		if err != nil {
			t.Fatalf("%s: Query(%q): %v", name, src, err)
		}
		if ref == nil {
			ref = r
			continue
		}
		a, b := ref.OIDs(), r.OIDs()
		if len(a) != len(b) {
			t.Fatalf("%s disagrees on %q: %v vs %v", name, src, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s disagrees on %q: %v vs %v", name, src, a, b)
			}
		}
	}
	return ref
}

func oidsOf(r *Result) []catalog.OID { return r.OIDs() }

func TestKeywordQuery(t *testing.T) {
	f := paperStore()
	r := runAll(t, f, `"Mike Franklin"`)
	want := []catalog.OID{6, 11}
	got := oidsOf(r)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("result = %v, want %v", got, want)
	}
}

func TestKeywordConjunction(t *testing.T) {
	f := paperStore()
	r := runAll(t, f, `"Franklin" and "dataspaces"`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 6 {
		t.Errorf("result = %v", got)
	}
}

func TestKeywordDisjunctionAndNot(t *testing.T) {
	f := paperStore()
	r := runAll(t, f, `"dataspaces" or "systems"`)
	if got := oidsOf(r); len(got) != 2 {
		t.Errorf("or result = %v", got)
	}
	r = runAll(t, f, `"Franklin" and not "dataspaces"`)
	if got := oidsOf(r); len(got) != 2 { // 8 and 11
		t.Errorf("not result = %v", got)
	}
}

func TestAttributePredicate(t *testing.T) {
	f := paperStore()
	r := runAll(t, f, `[size > 42000 and lastmodified < @12.06.2005]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 4 {
		t.Errorf("result = %v, want [4]", got)
	}
}

func TestPathDescendantWithClassAndPhrase(t *testing.T) {
	f := paperStore()
	// Query 1 of the paper.
	r := runAll(t, f, `//PIM//Introduction[class="latex_section" and "Mike Franklin"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 11 {
		t.Errorf("result = %v, want [11]", got)
	}
}

func TestPathWildcardSteps(t *testing.T) {
	f := paperStore()
	// Q4-like: //papers//*Vision/* — children of sections ending in Vision.
	r := runAll(t, f, `//papers//*Vision["Franklin"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 8 {
		t.Errorf("result = %v, want [8]", got)
	}
}

func TestPathChildAxis(t *testing.T) {
	f := paperStore()
	// Direct children only: //vldb.tex/* yields document and figure.
	r := runAll(t, f, `//vldb.tex/*`)
	if got := oidsOf(r); len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Errorf("result = %v, want [5 9]", got)
	}
	// Introduction is NOT a direct child of vldb.tex.
	r = runAll(t, f, `//vldb.tex/Introduction`)
	if got := oidsOf(r); len(got) != 0 {
		t.Errorf("child axis leaked descendants: %v", got)
	}
}

func TestPathThroughCrossEdge(t *testing.T) {
	f := paperStore()
	// The figure is a descendant of the Introduction *only* through the
	// texref cross edge.
	r := runAll(t, f, `//Introduction//[class="figure"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 9 {
		t.Errorf("result = %v, want [9]", got)
	}
}

func TestClassSpecializationMatching(t *testing.T) {
	f := paperStore()
	// figure is-a environment, so class="environment" must match it.
	r := runAll(t, f, `//[class="environment"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 9 {
		t.Errorf("result = %v, want [9]", got)
	}
	// latexfile is-a file.
	r = runAll(t, f, `//[class="file"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 4 {
		t.Errorf("file result = %v, want [4]", got)
	}
}

func TestUnionQueryEval(t *testing.T) {
	f := paperStore()
	r := runAll(t, f, `union( //PIM//*["Franklin"], //papers//*["Franklin"] )`)
	if got := oidsOf(r); len(got) != 3 { // 6, 8, 11
		t.Errorf("union = %v", got)
	}
	// Overlapping operands deduplicate.
	r = runAll(t, f, `union( //*["Franklin"], //*["Franklin"] )`)
	if got := oidsOf(r); len(got) != 3 {
		t.Errorf("dedup union = %v", got)
	}
}

func TestJoinQueryEval(t *testing.T) {
	f := paperStore()
	// Q7-like: texrefs joined to figures on name = tuple.label.
	r := runAll(t, f, `join( //[class="texref"] as A, //[class="figure"] as B, A.name = B.tuple.label )`)
	if r.Count() != 1 {
		t.Fatalf("join rows = %d", r.Count())
	}
	eng := NewEngine(f, Options{Now: fixedNow})
	res, err := eng.Query(`join( //[class="texref"] as A, //[class="figure"] as B, A.name = B.tuple.label )`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if len(row) != 2 || row[0] != 7 || row[1] != 9 {
		t.Errorf("join row = %v, want [7 9]", row)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "A" || res.Columns[1] != "B" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestJoinOnNameEquality(t *testing.T) {
	f := paperStore()
	// Two "Introduction" sections join on name.
	r := runAll(t, f, `join( //PIM//* as A, //papers//* as B, A.name = B.name )`)
	if r.Count() != 1 {
		t.Errorf("rows = %d", r.Count())
	}
}

func TestPlanUsesIndexes(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow})
	r, err := e.Query(`//PIM//Introduction[class="latex_section" and "Mike Franklin"]`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.IndexAccesses == 0 {
		t.Error("plan used no indexes")
	}
	if r.Plan.String() == "" {
		t.Error("plan has no notes")
	}
}

func TestForwardExpansionCountsIntermediates(t *testing.T) {
	f := paperStore()
	fwd := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow})
	bwd := NewEngine(f, Options{Expansion: BackwardExpansion, Now: fixedNow})
	// Anchored on a broad first step, forward expansion touches many
	// intermediates; backward anchors on the selective last step.
	src := `//root//[class="figure"]`
	rf, err := fwd.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bwd.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Count() != 1 || rb.Count() != 1 {
		t.Fatalf("counts: fwd=%d bwd=%d", rf.Count(), rb.Count())
	}
	if rf.Plan.Intermediates <= rb.Plan.Intermediates {
		t.Errorf("fwd intermediates %d should exceed bwd %d",
			rf.Plan.Intermediates, rb.Plan.Intermediates)
	}
}

func TestAutoExpansionPicksCheaperAnchor(t *testing.T) {
	f := paperStore()
	auto := NewEngine(f, Options{Expansion: AutoExpansion, Now: fixedNow})
	r, err := auto.Query(`//root//[class="figure"]`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range r.Plan.Notes {
		if n == "auto expansion: first=1 last=1 → backward" {
			found = true
		}
	}
	if !found {
		t.Logf("plan notes: %v", r.Plan.Notes)
	}
	if r.Count() != 1 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestBudgetExceeded(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Expansion: ForwardExpansion, Budget: 2, Now: fixedNow})
	if _, err := e.Query(`//root//Introduction`); err == nil {
		t.Error("budget of 2 not enforced")
	}
}

func TestQuerySyntaxErrorPropagates(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	if _, err := e.Query(`//a[`); err == nil {
		t.Error("syntax error swallowed")
	}
}

func TestEmptyResult(t *testing.T) {
	f := paperStore()
	r := runAll(t, f, `"no such phrase anywhere"`)
	if r.Count() != 0 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestRankedKeywordQuery(t *testing.T) {
	f := newFakeStore()
	f.add(1, "once", "", "Franklin appears here", core.EmptyTuple())
	f.add(2, "thrice", "", "Franklin and Franklin and Franklin", core.EmptyTuple())
	f.add(3, "twice", "", "Franklin, then Franklin again", core.EmptyTuple())
	e := NewEngine(f, Options{Rank: true, Now: fixedNow})
	r, err := e.Query(`"Franklin"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scores) != 3 {
		t.Fatalf("scores = %v", r.Scores)
	}
	wantOrder := []catalog.OID{2, 3, 1}
	wantScores := []float64{3, 2, 1}
	for i, row := range r.Rows {
		if row[0] != wantOrder[i] || r.Scores[i] != wantScores[i] {
			t.Errorf("rank %d: oid=%d score=%v, want oid=%d score=%v",
				i, row[0], r.Scores[i], wantOrder[i], wantScores[i])
		}
	}
}

func TestRankedIgnoresNegatedPhrases(t *testing.T) {
	f := newFakeStore()
	f.add(1, "a", "", "keep keep keep drop", core.EmptyTuple())
	f.add(2, "b", "", "keep", core.EmptyTuple())
	e := NewEngine(f, Options{Rank: true, Now: fixedNow})
	r, err := e.Query(`"keep" and not "nothere"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0] != 1 || r.Scores[0] != 3 {
		t.Errorf("top = oid %d score %v", r.Rows[0][0], r.Scores[0])
	}
}

func TestRankedNoPhrasesKeepsOrder(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Rank: true, Now: fixedNow})
	r, err := e.Query(`[size > 0]`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scores == nil || len(r.Scores) != len(r.Rows) {
		t.Fatalf("scores = %v", r.Scores)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i-1][0] >= r.Rows[i][0] {
			t.Error("phrase-less ranked result not OID-ordered")
		}
	}
}

func TestNamePseudoAttribute(t *testing.T) {
	f := paperStore()
	// [name = "..."] matches the η component with wildcard semantics.
	r := runAll(t, f, `[name = "Introduction"]`)
	if got := oidsOf(r); len(got) != 2 { // both Introduction sections
		t.Errorf("name = Introduction: %v", got)
	}
	r = runAll(t, f, `[name = "*.tex"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 4 {
		t.Errorf("name = *.tex: %v", got)
	}
	r = runAll(t, f, `//papers//[name = "?onclusion*" or name = "*Vision"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 8 {
		t.Errorf("disjunctive name predicate: %v", got)
	}
	// NE excludes matching names.
	r = runAll(t, f, `//vldb.tex/*[name != "figure"]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 5 {
		t.Errorf("name != figure: %v", got)
	}
}

func TestNamePredicateUsesNameIndex(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	r, err := e.Query(`[name = "figure"]`)
	if err != nil {
		t.Fatal(err)
	}
	usedNameIndex := false
	for _, n := range r.Plan.Notes {
		if strings.Contains(n, "name predicate") {
			usedNameIndex = true
		}
	}
	if !usedNameIndex {
		t.Errorf("planner skipped the name replica: %v", r.Plan.Notes)
	}
}

func TestUnrankedHasNilScores(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	r, err := e.Query(`"Franklin"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scores != nil {
		t.Errorf("scores = %v, want nil", r.Scores)
	}
}
