package iql

import (
	"runtime"

	"repro/internal/catalog"
)

// PlannerMode selects how the engine makes physical decisions: the
// legacy rule-based planner (fixed global parallelism, anchor choice by
// raw candidate counts) or the cost-based adaptive planner (per-stage
// serial/parallel crossover, expansion direction by estimated expansion
// cost, residual-filter elision on index-covered steps).
type PlannerMode int

// Planner modes. The zero value preserves the engine's historical
// rule-based behaviour exactly; the PDSMS facade defaults to adaptive.
const (
	PlannerRule PlannerMode = iota
	PlannerAdaptive
)

func (m PlannerMode) String() string {
	if m == PlannerAdaptive {
		return "adaptive"
	}
	return "rule"
}

// effectiveParallelism is the worker ceiling the adaptive planner will
// actually fan out to: the configured parallelism clamped by the
// schedulable CPUs (PlannerProcs overrides the CPU count, for tests
// that exercise parallel plans on small machines). Oversubscribing a
// box never helps a CPU-bound stage — goroutines beyond the core count
// only multiplex and add merge overhead, which is exactly the regression
// the planner exists to avoid.
func (o Options) effectiveParallelism() int {
	procs := o.PlannerProcs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if n := runtime.NumCPU(); n < procs {
			procs = n
		}
	}
	if o.Parallelism < procs {
		procs = o.Parallelism
	}
	if procs < 1 {
		procs = 1
	}
	return procs
}

// workers decides the worker count for one data-parallel stage of n
// items costing perItem work units each. Rule mode keeps the legacy
// behaviour (fan out whenever the engine is parallel and the stage has
// parThreshold items). Adaptive mode additionally requires the stage's
// estimated work to clear the calibrated crossover and never exceeds
// the effective (CPU-clamped) parallelism. Every call is one planner
// stage decision, counted on the plan for the idm_planner_* metrics.
func (c *evalCtx) workers(n, perItem int) int {
	var w int
	if c.planner != PlannerAdaptive {
		w = workersFor(c.par, n)
	} else {
		w = workersFor(c.effPar, n)
		if w > 1 {
			if perItem < 1 {
				perItem = 1
			}
			if n*perItem < parCrossover {
				w = 1
			}
		}
	}
	if w > 1 {
		c.plan.addParallelStages(1)
	} else {
		c.plan.addSerialStages(1)
	}
	return w
}

// concurrentBranches reports whether independent sub-queries (union
// branches, join inputs) should evaluate concurrently.
func (c *evalCtx) concurrentBranches() bool {
	if c.planner != PlannerAdaptive {
		return c.par > 1
	}
	return c.effPar > 1
}

// pathChoice is the adaptive planner's decision for one path query.
type pathChoice struct {
	strategy Expansion
	estLast  int
	reach    int
	fwdCost  int
	bwdCost  int
	reason   string
}

// choosePathStrategy picks forward vs backward expansion for a path
// whose first anchor has been resolved. Forward expansion touches
// every view reachable from the first anchor's matches; backward
// expansion verifies each last-anchor candidate by walking its
// ancestors. The decision compares estimated total work rather than
// raw candidate counts — a 1-view first anchor rooting a 10k-view
// subtree should still expand backward when the last anchor is
// selective. The last anchor is deliberately NOT resolved here: its
// cardinality comes from statistics, so the unchosen direction's
// anchor (which can cost a full wildcard name scan) is never
// materialized — the rule planner's auto mode pays exactly that double
// resolution. Caller guarantees c.stats != nil.
func (c *evalCtx) choosePathStrategy(q *PathQuery, first []catalog.OID) pathChoice {
	steps := q.Steps
	reach := c.stats.EstimateReach(first)
	estLast := c.estimateQuery(q)
	match := 1
	for _, s := range steps[1:] {
		if sc := stepMatchCost(s); sc > match {
			match = sc
		}
	}
	fwd := reach * (costChildEdge + match)
	// Backward verification is asymmetric: a candidate under the first
	// anchor finds its ancestor quickly (early exit), while a candidate
	// outside the anchor's reach must walk its whole ancestor closure to
	// prove the miss. Candidates are assumed uniformly distributed, so
	// the expected miss count is the fraction of the store outside the
	// anchor's reach.
	outside := estLast
	if total := c.store.Count(); reach >= total {
		outside = 0
	} else if total > 0 {
		outside = estLast * (total - reach) / total
	}
	bwd := estLast*(len(steps)-1)*costVerifyAncestor + outside*costVerifyMiss
	if bwd <= fwd {
		return pathChoice{strategy: BackwardExpansion, estLast: estLast, reach: reach, fwdCost: fwd, bwdCost: bwd,
			reason: "backward verification cheaper than forward reach"}
	}
	return pathChoice{strategy: ForwardExpansion, estLast: estLast, reach: reach, fwdCost: fwd, bwdCost: bwd,
		reason: "forward reach cheaper than backward verification"}
}
