package iql

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/oidset"
)

// Options tunes the engine.
type Options struct {
	// Expansion selects the path-evaluation strategy (default forward,
	// as in the paper's prototype).
	Expansion Expansion
	// Budget bounds the number of views touched during one expansion;
	// <= 0 applies 1 << 20. The budget may be consumed in full: an
	// expansion touching exactly Budget views succeeds, one more fails.
	Budget int
	// Now supplies the clock for date functions; nil means time.Now.
	Now func() time.Time
	// Rank orders result rows by relevance: the summed occurrence
	// counts of the query's (non-negated) phrases in each view's
	// content. Ties order by OID. Without phrases, ranking leaves the
	// OID order.
	Rank bool
	// Parallelism is the worker count for query execution: frontier
	// expansion, backward ancestor verification, union and join
	// fan-out, and residual filtering all shard across this many
	// workers when a stage carries enough work. <= 0 applies
	// runtime.GOMAXPROCS(0); 1 preserves fully serial execution.
	// Results are identical at any setting: rows are sorted before
	// return, so only internal evaluation order varies.
	Parallelism int
	// Planner selects the physical decision maker. The zero value
	// (PlannerRule) keeps the legacy rule-based behaviour: fan out
	// every large-enough stage to Parallelism workers and choose
	// auto-expansion anchors by raw candidate counts. PlannerAdaptive
	// makes cost-based decisions from catalog/index statistics:
	// per-stage serial/parallel crossover clamped by schedulable CPUs,
	// expansion direction by estimated expansion cost, and
	// residual-filter elision on index-covered steps. Results are
	// identical under either planner.
	Planner PlannerMode
	// PlannerProcs overrides the schedulable-CPU count the adaptive
	// planner clamps Parallelism with (<= 0 = min(GOMAXPROCS, NumCPU)).
	// Tests use it to exercise parallel plans on small machines.
	PlannerProcs int
	// Metrics receives the engine's counters and latency histograms
	// (iql_* instruments, see docs/OBSERVABILITY.md). nil leaves the
	// engine uninstrumented; a disabled registry costs one atomic load
	// per instrument call.
	Metrics *obs.Registry
	// QueryLog receives one record per completed string-level query
	// (Query and QueryTraced; Exec/ExecTraced bypass it — callers
	// evaluating pre-parsed ASTs own their logging). nil disables
	// logging. Queries at or over the log's slow threshold additionally
	// retain a full trace render; see obs.QueryLog.
	QueryLog *obs.QueryLog
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 1 << 20
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Engine evaluates iQL queries against a Store. An Engine's options are
// immutable after construction and it is safe for concurrent Query/Exec
// calls; internally it memoizes parses and planner estimates across
// executions (see planCache).
type Engine struct {
	store Store
	opts  Options
	met   engineMetrics
	// versioned is the store's dataspace-version surface (nil when the
	// store has none); it invalidates the cached planner estimates.
	versioned interface{ Version() uint64 }
	plans     planCache
}

// engineMetrics bundles the engine's instruments. With a nil
// Options.Metrics every field is a nil (no-op) instrument, so the hot
// paths need no registry checks.
type engineMetrics struct {
	queries       *obs.Counter
	errors        *obs.Counter
	queryNs       *obs.Histogram
	parseNs       *obs.Histogram
	rows          *obs.Counter
	intermediates *obs.Counter
	indexAccesses *obs.Counter
	// idm_planner_* instruments surface the planner's physical
	// decisions (see docs/IQL.md "Cost-based planning").
	plannerPlans    *obs.Counter
	plannerParallel *obs.Counter
	plannerSerial   *obs.Counter
	plannerPush     *obs.Counter
	plannerSkips    *obs.Counter
	plannerEstErr   *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	return engineMetrics{
		queries:         reg.Counter("iql_queries_total"),
		errors:          reg.Counter("iql_query_errors_total"),
		queryNs:         reg.Histogram("iql_query_ns", nil),
		parseNs:         reg.Histogram("iql_parse_ns", nil),
		rows:            reg.Counter("iql_rows_total"),
		intermediates:   reg.Counter("iql_intermediates_total"),
		indexAccesses:   reg.Counter("iql_index_accesses_total"),
		plannerPlans:    reg.Counter("idm_planner_plans_total"),
		plannerParallel: reg.Counter("idm_planner_parallel_stages_total"),
		plannerSerial:   reg.Counter("idm_planner_serial_stages_total"),
		plannerPush:     reg.Counter("idm_planner_pushdowns_total"),
		plannerSkips:    reg.Counter("idm_planner_residual_skips_total"),
		plannerEstErr:   reg.Histogram("idm_planner_estimate_error_pct", nil),
	}
}

// NewEngine returns an engine over the store.
func NewEngine(store Store, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{store: store, opts: opts, met: newEngineMetrics(opts.Metrics)}
	e.versioned, _ = store.(interface{ Version() uint64 })
	return e
}

// Result is the outcome of a query. Rows have one column for path,
// predicate and union queries and two columns (left, right) for joins.
type Result struct {
	Columns []string
	Rows    [][]catalog.OID
	// Scores aligns with Rows when the engine ranked the result
	// (Options.Rank); nil otherwise.
	Scores []float64
	Plan   *PlanInfo
	// Stats is the per-query resource accounting: what the query cost,
	// not just how long it took. See QueryStats.
	Stats QueryStats
}

// Count returns the number of result rows (the "# of Results" column of
// Table 4 in the paper).
func (r *Result) Count() int { return len(r.Rows) }

// OIDs returns the distinct OIDs of the first result column in ascending
// order.
func (r *Result) OIDs() []catalog.OID {
	seen := oidset.New(0)
	for _, row := range r.Rows {
		if len(row) > 0 {
			seen.Add(row[0])
		}
	}
	return seen.Slice()
}

// Query parses and evaluates an iQL query string.
func (e *Engine) Query(src string) (*Result, error) {
	t0 := time.Now()
	res, err := e.query(src, nil)
	elapsed := time.Since(t0)
	if res != nil {
		res.Stats.ElapsedNs = int64(elapsed)
	}
	e.record(src, res, err, elapsed, nil)
	return res, err
}

// QueryTraced parses and evaluates src with span-based tracing: the
// returned trace holds the parse → plan → eval span tree, including
// per-worker spans for the stages the engine sharded. Tracing records
// wall-clock per stage, so traced runs cost slightly more than Query.
func (e *Engine) QueryTraced(src string) (*Result, *obs.Trace, error) {
	t0 := time.Now()
	trace := obs.NewTrace("query " + src)
	res, err := e.query(src, trace)
	trace.Finish()
	elapsed := time.Since(t0)
	if res != nil {
		res.Stats.ElapsedNs = int64(elapsed)
	}
	e.record(src, res, err, elapsed, trace)
	return res, trace, err
}

func (e *Engine) query(src string, trace *obs.Trace) (*Result, error) {
	t0 := time.Now()
	ps := trace.Root().Start("parse")
	q, ok := e.plans.parsedFor(src)
	if !ok {
		var usedClock bool
		var err error
		q, usedClock, err = parseTracked(src, ParseOptions{Now: e.opts.Now})
		if err != nil {
			e.met.parseNs.ObserveSince(t0)
			ps.Set("error", err.Error())
			ps.Finish()
			e.met.queries.Inc()
			e.met.errors.Inc()
			return nil, err
		}
		// A parse that consulted the clock (now()/yesterday()/...)
		// may yield a different AST next call; cache only the rest.
		if !usedClock {
			e.plans.storeParsed(src, q)
		}
	}
	e.met.parseNs.ObserveSince(t0)
	if trace != nil {
		ps.Set("normalized", q.String())
	}
	ps.Finish()
	return e.ExecTraced(q, trace)
}

// Exec evaluates a parsed query.
func (e *Engine) Exec(q Query) (*Result, error) {
	return e.ExecTraced(q, nil)
}

// ExecTraced evaluates a parsed query, recording plan and eval spans
// into trace (nil trace = no tracing, identical to Exec).
func (e *Engine) ExecTraced(q Query, trace *obs.Trace) (*Result, error) {
	t0 := time.Now()
	e.met.queries.Inc()
	root := trace.Root()

	plan := &PlanInfo{EstimatedRows: -1}
	ctx := newEvalCtx(e.store, plan, e.opts.Parallelism)
	ctx.planner = e.opts.Planner
	ctx.effPar = e.opts.effectiveParallelism()
	ctx.stats, _ = e.store.(StatsProvider)
	// Cross-execution estimate reuse needs a dataspace version to
	// invalidate on; without one every execution re-derives estimates.
	if e.versioned != nil {
		ctx.shared = &e.plans
		ctx.sharedVersion = e.versioned.Version()
	}

	// The planner's static choices; per-query decisions (expansion
	// anchoring, join build side) annotate eval spans.
	pl := root.Start("plan")
	pl.Set("strategy", e.opts.Expansion.String())
	pl.SetInt("parallelism", int64(e.opts.Parallelism))
	pl.SetInt("budget", int64(e.opts.Budget))
	if e.opts.Planner == PlannerAdaptive {
		e.met.plannerPlans.Inc()
		est := ctx.estimateQuery(q)
		plan.EstimatedRows = int64(est)
		pl.Set("planner", "adaptive")
		pl.SetInt("estimated rows", int64(est))
		pl.SetInt("effective parallelism", int64(ctx.effPar))
		b := make([]byte, 0, 64)
		b = append(b, "planner: cost-based, estimated rows ≤ "...)
		b = strconv.AppendInt(b, int64(est), 10)
		b = append(b, ", effective parallelism "...)
		b = strconv.AppendInt(b, int64(ctx.effPar), 10)
		plan.note(string(b))
	}
	pl.Finish()

	// Stores backed by a Resource View Manager report degraded sources;
	// their replicated views are served stale instead of failing the
	// query, and the plan carries the flag (graceful degradation).
	if hr, ok := e.store.(interface{ DegradedSources() []string }); ok {
		if stale := hr.DegradedSources(); len(stale) > 0 {
			plan.StaleSources = stale
			plan.notef("degraded sources, serving stale replicas: %s", strings.Join(stale, ", "))
			sp := root.Start("stale")
			sp.Set("sources", strings.Join(stale, ","))
			sp.Finish()
		}
	}
	ev := root.Start("eval")
	rows, cols, err := e.exec(ctx, q, ev)
	ev.Finish()
	if err != nil {
		e.met.errors.Inc()
		return nil, err
	}
	res := &Result{Columns: cols, Rows: rows, Plan: plan}
	// The top-level strategy of a path query is set by evalPath (the
	// chosen expansion direction); other operators name themselves.
	switch q.(type) {
	case *PredQuery:
		plan.setStrategy("predicate")
	case *UnionQuery:
		plan.setStrategy("union")
	case *JoinQuery:
		plan.setStrategy("join")
	}
	if e.opts.Rank {
		rs := root.Start("sort")
		rs.Set("order", "relevance (tf)")
		e.rank(q, res)
		rs.Finish()
	}
	// Per-query resource accounting. All workers have joined, so the
	// plan's atomic counters read exact here.
	planner := "rule"
	if e.opts.Planner == PlannerAdaptive {
		planner = "adaptive"
	}
	res.Stats = QueryStats{
		ElapsedNs:       int64(time.Since(t0)),
		Rows:            int64(len(res.Rows)),
		RowsScanned:     plan.RowsScanned,
		PostingsRead:    plan.PostingsRead,
		ResidualFilters: plan.ResidualFilters,
		ViewsExpanded:   plan.Intermediates,
		PeakFrontier:    plan.PeakFrontier,
		IndexAccesses:   plan.IndexAccesses,
		EstimatedRows:   plan.EstimatedRows,
		ParallelStages:  plan.ParallelStages,
		SerialStages:    plan.SerialStages,
		Strategy:        plan.Strategy,
		Planner:         planner,
	}
	if trace != nil {
		st := root.Start("stats")
		st.SetInt("rows", res.Stats.Rows)
		st.SetInt("rows scanned", res.Stats.RowsScanned)
		st.SetInt("postings read", res.Stats.PostingsRead)
		st.SetInt("residual filters", res.Stats.ResidualFilters)
		st.SetInt("views expanded", res.Stats.ViewsExpanded)
		st.SetInt("peak frontier", res.Stats.PeakFrontier)
		st.SetInt("index accesses", res.Stats.IndexAccesses)
		st.Finish()
	}
	e.met.queryNs.ObserveSince(t0)
	e.met.rows.Add(int64(len(res.Rows)))
	e.met.intermediates.Add(plan.Intermediates)
	e.met.indexAccesses.Add(plan.IndexAccesses)
	e.met.plannerParallel.Add(plan.ParallelStages)
	e.met.plannerSerial.Add(plan.SerialStages)
	e.met.plannerPush.Add(plan.Pushdowns)
	e.met.plannerSkips.Add(plan.ResidualSkips)
	if plan.EstimatedRows >= 0 {
		// Estimation-accuracy signal: symmetric error ratio between the
		// pre-execution bound and the actual row count, in percent
		// (100 = exact; +1 smoothing keeps empty results finite).
		est, act := plan.EstimatedRows, int64(len(res.Rows))
		lo, hi := est, act
		if lo > hi {
			lo, hi = hi, lo
		}
		e.met.plannerEstErr.Observe(100 * (hi + 1) / (lo + 1))
	}
	return res, nil
}

// rank orders result rows by the summed content-occurrence counts of
// the query's non-negated phrases (a simple tf relevance score).
func (e *Engine) rank(q Query, res *Result) {
	phrases := collectPhrases(q)
	if len(phrases) == 0 || len(res.Rows) == 0 {
		res.Scores = make([]float64, len(res.Rows))
		return
	}
	freqs := make([]map[catalog.OID]int, len(phrases))
	for i, p := range phrases {
		freqs[i] = e.store.ContentPhraseFreqs(p)
	}
	type scored struct {
		row   []catalog.OID
		score float64
	}
	rows := make([]scored, len(res.Rows))
	for i, row := range res.Rows {
		s := 0.0
		for _, col := range row {
			for _, f := range freqs {
				s += float64(f[col])
			}
		}
		rows[i] = scored{row: row, score: s}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].score > rows[j].score })
	res.Scores = make([]float64, len(rows))
	for i, r := range rows {
		res.Rows[i] = r.row
		res.Scores[i] = r.score
	}
}

// collectPhrases gathers the non-negated phrases of a query's
// predicates in syntax order.
func collectPhrases(q Query) []string {
	var out []string
	var fromExpr func(e Expr, negated bool)
	fromExpr = func(e Expr, negated bool) {
		switch x := e.(type) {
		case *AndExpr:
			fromExpr(x.L, negated)
			fromExpr(x.R, negated)
		case *OrExpr:
			fromExpr(x.L, negated)
			fromExpr(x.R, negated)
		case *NotExpr:
			fromExpr(x.E, !negated)
		case *PhraseExpr:
			if !negated {
				out = append(out, x.Phrase)
			}
		}
	}
	var fromQuery func(Query)
	fromQuery = func(q Query) {
		switch x := q.(type) {
		case *PredQuery:
			fromExpr(x.Pred, false)
		case *PathQuery:
			for _, s := range x.Steps {
				if s.Pred != nil {
					fromExpr(s.Pred, false)
				}
			}
		case *UnionQuery:
			for _, a := range x.Args {
				fromQuery(a)
			}
		case *JoinQuery:
			fromQuery(x.Left)
			fromQuery(x.Right)
		}
	}
	fromQuery(q)
	return out
}

// exec evaluates one query node; sp is the parent span node-level spans
// attach to (nil when untraced).
func (e *Engine) exec(ctx *evalCtx, q Query, sp *obs.Span) ([][]catalog.OID, []string, error) {
	switch x := q.(type) {
	case *PredQuery:
		ctx.plan.notef("predicate over all views: %s", x.Pred)
		ps := startSpan(sp, "predicate %s", x.Pred)
		oids := ctx.resolveStep(Step{Axis: Descendant, Pred: x.Pred}, ps)
		ps.SetInt("matches", int64(len(oids)))
		ps.Finish()
		return singleColumn(oids), []string{"view"}, nil
	case *PathQuery:
		ps := startSpan(sp, "path %s", x)
		oids, err := e.evalPath(ctx, x, ps)
		ps.Finish()
		if err != nil {
			return nil, nil, err
		}
		ps.SetInt("matches", int64(len(oids)))
		return singleColumn(oids), []string{"view"}, nil
	case *UnionQuery:
		return e.evalUnion(ctx, x, sp)
	case *JoinQuery:
		return e.evalJoin(ctx, x, sp)
	case *DeleteQuery:
		return nil, nil, fmt.Errorf("iql: engine is read-only; execute delete statements through the PDSMS")
	default:
		return nil, nil, fmt.Errorf("iql: unknown query node %T", q)
	}
}

// startSpan starts a child span with a formatted name, paying the
// formatting cost only when tracing is live.
func startSpan(parent *obs.Span, format string, args ...any) *obs.Span {
	if parent == nil {
		return nil
	}
	return parent.Start(fmt.Sprintf(format, args...))
}

func singleColumn(oids []catalog.OID) [][]catalog.OID {
	rows := make([][]catalog.OID, len(oids))
	for i, o := range oids {
		rows[i] = []catalog.OID{o}
	}
	return rows
}

// evalUnion evaluates the duplicate-free union, running the branch
// queries concurrently when the engine is parallel (each branch is an
// independent subquery sharing this query's memoized index lookups).
func (e *Engine) evalUnion(ctx *evalCtx, q *UnionQuery, sp *obs.Span) ([][]catalog.OID, []string, error) {
	ctx.plan.notef("union of %d queries", len(q.Args))
	us := startSpan(sp, "union")
	us.SetInt("branches", int64(len(q.Args)))
	branches := make([][][]catalog.OID, len(q.Args))
	errs := make([]error, len(q.Args))
	spans := make([]*obs.Span, len(q.Args))
	for i := range q.Args {
		spans[i] = startSpan(us, "branch %d", i+1)
	}
	run := func(i int) {
		branches[i], _, errs[i] = e.exec(ctx, q.Args[i], spans[i])
		spans[i].Finish()
	}
	// Serial evaluation order: the adaptive planner runs the branch
	// with the smallest estimated result first, so cheap branches warm
	// the shared index memos before expensive ones reuse them.
	order := make([]int, len(q.Args))
	for i := range order {
		order[i] = i
	}
	if ctx.planner == PlannerAdaptive && ctx.stats != nil && len(q.Args) > 1 {
		ests := make([]int, len(q.Args))
		for i, a := range q.Args {
			ests[i] = ctx.estimateQuery(a)
		}
		sort.SliceStable(order, func(i, j int) bool { return ests[order[i]] < ests[order[j]] })
		b := make([]byte, 0, 96)
		b = append(b, "planner: union evaluation order ["...)
		for i, br := range order {
			if i > 0 {
				b = append(b, ' ')
			}
			b = strconv.AppendInt(b, int64(br+1), 10)
		}
		b = append(b, "] (estimated rows ["...)
		for i, est := range ests {
			if i > 0 {
				b = append(b, ' ')
			}
			b = strconv.AppendInt(b, int64(est), 10)
		}
		b = append(b, "])"...)
		ctx.plan.note(string(b))
	}
	if ctx.concurrentBranches() && len(q.Args) > 1 {
		var wg sync.WaitGroup
		for i := range q.Args {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for _, i := range order {
			run(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			us.Finish()
			return nil, nil, err
		}
	}
	seen := oidset.New(0)
	for _, rows := range branches {
		for _, row := range rows {
			if len(row) == 1 {
				seen.Add(row[0])
			}
		}
	}
	us.SetInt("matches", int64(seen.Len()))
	us.Finish()
	return singleColumn(seen.Slice()), []string{"view"}, nil
}

// evalPath evaluates a path expression with the configured expansion
// strategy. Under automatic expansion the anchor steps are resolved once
// and the already-resolved candidate lists are threaded into the chosen
// strategy, so no step is resolved twice.
func (e *Engine) evalPath(ctx *evalCtx, q *PathQuery, sp *obs.Span) ([]catalog.OID, error) {
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("iql: empty path")
	}
	strategy := e.opts.Expansion
	var first, last []catalog.OID
	haveFirst, haveLast := false, false
	if strategy == AutoExpansion {
		// Anchor on the cheaper end. The first anchor is resolved once
		// and threaded into the chosen strategy. The rule planner then
		// also resolves the last anchor and compares raw candidate
		// counts; the adaptive planner instead estimates the last
		// anchor's cardinality from statistics and compares estimated
		// expansion costs — forward pays for every view reachable from
		// the first anchor, backward pays one ancestor verification per
		// last-anchor candidate — so the unchosen direction's anchor is
		// never materialized.
		cs := startSpan(sp, "strategy choice")
		first = ctx.resolveStep(q.Steps[0], cs)
		haveFirst = true
		if len(q.Steps) == 1 {
			ctx.plan.notef("single-step path: %d matches", len(first))
			ctx.plan.setStrategy("single step")
			cs.SetInt("first", int64(len(first)))
			cs.Set("chosen", "single step")
			cs.Finish()
			return first, nil
		}
		if ctx.planner == PlannerAdaptive && ctx.stats != nil {
			choice := ctx.choosePathStrategy(q, first)
			strategy = choice.strategy
			b := make([]byte, 0, 160)
			b = append(b, "planner: auto expansion: first="...)
			b = strconv.AppendInt(b, int64(len(first)), 10)
			b = append(b, " est-last≈"...)
			b = strconv.AppendInt(b, int64(choice.estLast), 10)
			b = append(b, " reach≈"...)
			b = strconv.AppendInt(b, int64(choice.reach), 10)
			b = append(b, " forward-cost="...)
			b = strconv.AppendInt(b, int64(choice.fwdCost), 10)
			b = append(b, " backward-cost="...)
			b = strconv.AppendInt(b, int64(choice.bwdCost), 10)
			b = append(b, " → "...)
			b = append(b, strategy.String()...)
			b = append(b, " ("...)
			b = append(b, choice.reason...)
			b = append(b, ')')
			ctx.plan.note(string(b))
			cs.SetInt("estimated last", int64(choice.estLast))
			cs.SetInt("estimated reach", int64(choice.reach))
			cs.Set("reason", choice.reason)
		} else {
			last = ctx.resolveStep(q.Steps[len(q.Steps)-1], cs)
			haveLast = true
			if len(last) <= len(first) {
				strategy = BackwardExpansion
			} else {
				strategy = ForwardExpansion
			}
			ctx.plan.notef("auto expansion: first=%d last=%d → %s",
				len(first), len(last), strategy)
			cs.SetInt("last", int64(len(last)))
		}
		cs.SetInt("first", int64(len(first)))
		cs.Set("chosen", strategy.String())
		cs.Finish()
	}
	ctx.plan.setStrategy(strategy.String())
	if strategy == BackwardExpansion {
		return e.evalPathBackward(ctx, q, last, haveLast, sp)
	}
	return e.evalPathForward(ctx, q, first, haveFirst, sp)
}

// evalPathForward implements the paper's strategy: resolve the first
// step via indexes, then expand forward through the group replica,
// filtering at each step. Q8's large intermediate result sets arise
// here, exactly as §7.2 describes; each frontier is sharded across the
// engine's workers.
func (e *Engine) evalPathForward(ctx *evalCtx, q *PathQuery, first []catalog.OID, haveFirst bool, sp *obs.Span) ([]catalog.OID, error) {
	ctx.plan.notef("forward expansion over %d steps", len(q.Steps))
	fs := startSpan(sp, "forward expansion")
	cur := first
	if !haveFirst {
		ss := startSpan(fs, "step 1 %s", q.Steps[0])
		cur = ctx.resolveStep(q.Steps[0], ss)
		ss.SetInt("matches", int64(len(cur)))
		ss.Finish()
	}
	ctx.plan.notef("  step 1 %s: %d matches", q.Steps[0], len(cur))
	bud := newBudget(e.opts.Budget)
	for i := 1; i < len(q.Steps); i++ {
		step := q.Steps[i]
		ss := startSpan(fs, "step %d %s", i+1, step)
		var matched *oidset.Set
		var touched int
		var err error
		switch step.Axis {
		case Child:
			matched, touched, err = ctx.expandChild(step, cur, bud, ss)
		case Descendant:
			matched, touched, err = ctx.expandDescendant(step, cur, bud, ss)
		default:
			matched = oidset.New(0)
		}
		ctx.plan.addIntermediates(touched)
		if err != nil {
			ss.Set("error", err.Error())
			ss.Finish()
			fs.Finish()
			return nil, err
		}
		cur = matched.Slice()
		ss.SetInt("touched", int64(touched))
		ss.SetInt("matches", int64(len(cur)))
		ss.Finish()
		ctx.plan.notef("  step %d %s: %d matches", i+1, step, len(cur))
	}
	fs.Finish()
	return cur, nil
}

// evalPathBackward resolves the final step via indexes and verifies the
// ancestor constraints by walking the reverse edges — the alternative
// processing strategy §7.2 proposes for queries like Q8. Every
// candidate's verification walk is independent, so candidates shard
// across the engine's workers.
func (e *Engine) evalPathBackward(ctx *evalCtx, q *PathQuery, last []catalog.OID, haveLast bool, sp *obs.Span) ([]catalog.OID, error) {
	ctx.plan.notef("backward expansion over %d steps", len(q.Steps))
	bs := startSpan(sp, "backward verification")
	lastIdx := len(q.Steps) - 1
	candidates := last
	if !haveLast {
		ss := startSpan(bs, "step %d %s", lastIdx+1, q.Steps[lastIdx])
		candidates = ctx.resolveStep(q.Steps[lastIdx], ss)
		ss.SetInt("candidates", int64(len(candidates)))
		ss.Finish()
	}
	ctx.plan.notef("  step %d %s: %d candidates", lastIdx+1, q.Steps[lastIdx], len(candidates))
	bs.SetInt("candidates", int64(len(candidates)))
	if lastIdx == 0 {
		bs.Finish()
		return candidates, nil
	}
	bud := newBudget(e.opts.Budget)
	keep := make([]bool, len(candidates))
	w := ctx.workers(len(candidates), costVerifyAncestor)
	errs := make([]error, w)
	parRange(len(candidates), w, func(worker, lo, hi int) {
		ws := workerSpan(bs, w, worker, lo, hi)
		for i := lo; i < hi; i++ {
			ok, err := e.verifyAncestors(ctx, q.Steps, lastIdx, candidates[i], bud)
			if err != nil {
				errs[worker] = err
				ws.Set("error", err.Error())
				ws.Finish()
				return
			}
			keep[i] = ok
		}
		ws.Finish()
	})
	for _, err := range errs {
		if err != nil {
			bs.Finish()
			return nil, err
		}
	}
	var out []catalog.OID
	for i, ok := range keep {
		if ok {
			out = append(out, candidates[i])
		}
	}
	ctx.plan.notef("  verified: %d of %d candidates", len(out), len(candidates))
	bs.SetInt("verified", int64(len(out)))
	bs.Finish()
	return out, nil
}

// verifyAncestors checks that a candidate for step k has an ancestor
// chain matching steps k-1 ... 0.
func (e *Engine) verifyAncestors(ctx *evalCtx, steps []Step, k int, oid catalog.OID, bud *expansionBudget) (bool, error) {
	if k == 0 {
		return true, nil
	}
	step := steps[k]
	prev := steps[k-1]
	// Gather the views reachable backwards along this step's axis.
	var ancestors []catalog.OID
	switch step.Axis {
	case Child:
		ancestors = ctx.store.Parents(oid)
		ctx.plan.addIntermediates(len(ancestors))
	case Descendant:
		visited := oidset.New(0)
		frontier := []catalog.OID{oid}
		touched := 0
		for len(frontier) > 0 {
			var next []catalog.OID
			for _, f := range frontier {
				for _, p := range ctx.store.Parents(f) {
					if !visited.Add(p) {
						continue
					}
					touched++
					if !bud.take(1) {
						ctx.plan.addIntermediates(touched)
						return false, errBudget
					}
					ancestors = append(ancestors, p)
					next = append(next, p)
				}
			}
			frontier = next
		}
		ctx.plan.addIntermediates(touched)
	}
	for _, a := range ancestors {
		if !ctx.matchStep(prev, a) {
			continue
		}
		ok, err := e.verifyAncestors(ctx, steps, k-1, a, bud)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// evalJoin evaluates an equi-join with a hash join. The rule-based
// planner builds the hash table on the smaller input and probes with the
// larger one; output rows are always (left, right). The two inputs are
// evaluated concurrently when the engine is parallel, and probing shards
// the probe side across workers.
func (e *Engine) evalJoin(ctx *evalCtx, q *JoinQuery, sp *obs.Span) ([][]catalog.OID, []string, error) {
	js := startSpan(sp, "join")
	ls := startSpan(js, "left input")
	rs := startSpan(js, "right input")
	var leftRows, rightRows [][]catalog.OID
	var leftErr, rightErr error
	if ctx.concurrentBranches() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			leftRows, _, leftErr = e.exec(ctx, q.Left, ls)
			ls.Finish()
		}()
		go func() {
			defer wg.Done()
			rightRows, _, rightErr = e.exec(ctx, q.Right, rs)
			rs.Finish()
		}()
		wg.Wait()
	} else {
		leftRows, _, leftErr = e.exec(ctx, q.Left, ls)
		ls.Finish()
		if leftErr == nil {
			rightRows, _, rightErr = e.exec(ctx, q.Right, rs)
		}
		rs.Finish()
	}
	if leftErr != nil {
		js.Finish()
		return nil, nil, leftErr
	}
	if rightErr != nil {
		js.Finish()
		return nil, nil, rightErr
	}

	// Build-side choice: the adaptive planner decides from estimated
	// input cardinalities (a pre-execution decision EXPLAIN can pin);
	// the rule planner uses the materialized row counts.
	buildLeft := len(leftRows) < len(rightRows)
	if ctx.planner == PlannerAdaptive && ctx.stats != nil {
		estL, estR := ctx.estimateQuery(q.Left), ctx.estimateQuery(q.Right)
		buildLeft = estL < estR
		b := make([]byte, 0, 80)
		b = append(b, "planner: join build side by estimate: left≈"...)
		b = strconv.AppendInt(b, int64(estL), 10)
		b = append(b, " right≈"...)
		b = strconv.AppendInt(b, int64(estR), 10)
		b = append(b, " → build on "...)
		if buildLeft {
			b = append(b, "left"...)
		} else {
			b = append(b, "right"...)
		}
		ctx.plan.note(string(b))
	}
	build, probe := rightRows, leftRows
	buildField, probeField := q.On[1], q.On[0]
	buildIsRight := true
	if buildLeft {
		build, probe = leftRows, rightRows
		buildField, probeField = q.On[0], q.On[1]
		buildIsRight = false
	}
	ctx.plan.notef("join: %d x %d rows on %s = %s (hash build on %s side)",
		len(leftRows), len(rightRows), q.On[0], q.On[1],
		map[bool]string{true: "right", false: "left"}[buildIsRight])
	js.Set("build side", map[bool]string{true: "right", false: "left"}[buildIsRight])

	hs := startSpan(js, "hash build")
	hs.SetInt("rows", int64(len(build)))
	hash := make(map[string][]catalog.OID, len(build))
	for _, row := range build {
		if len(row) != 1 {
			continue
		}
		key, ok := e.fieldKey(ctx, buildField, row[0])
		if !ok {
			continue
		}
		hash[key] = append(hash[key], row[0])
	}
	hs.Finish()
	ps := startSpan(js, "probe")
	ps.SetInt("rows", int64(len(probe)))
	w := ctx.workers(len(probe), costNameMatch)
	parts := make([][][]catalog.OID, w)
	parRange(len(probe), w, func(worker, lo, hi int) {
		ws := workerSpan(ps, w, worker, lo, hi)
		var out [][]catalog.OID
		for _, row := range probe[lo:hi] {
			if len(row) != 1 {
				continue
			}
			key, ok := e.fieldKey(ctx, probeField, row[0])
			if !ok {
				continue
			}
			for _, b := range hash[key] {
				if buildIsRight {
					out = append(out, []catalog.OID{row[0], b})
				} else {
					out = append(out, []catalog.OID{b, row[0]})
				}
			}
		}
		parts[worker] = out
		ws.SetInt("matches", int64(len(out)))
		ws.Finish()
	})
	ps.Finish()
	var out [][]catalog.OID
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	js.SetInt("matches", int64(len(out)))
	js.Finish()
	return out, []string{q.LeftAs, q.RightAs}, nil
}

// fieldKey extracts a join key from a view. Keys compare as strings;
// empty values never join.
func (e *Engine) fieldKey(ctx *evalCtx, f FieldRef, oid catalog.OID) (string, bool) {
	switch f.Kind {
	case FieldName:
		n := ctx.store.NameOf(oid)
		return n, n != ""
	case FieldClass:
		entry, err := ctx.store.Entry(oid)
		if err != nil || entry.Class == "" {
			return "", false
		}
		return entry.Class, true
	case FieldTupleAttr:
		tc, ok := ctx.store.Tuple(oid)
		if !ok {
			return "", false
		}
		v, ok := tc.Get(f.Attr)
		if !ok || v.IsNull() {
			return "", false
		}
		return v.String(), true
	default:
		return "", false
	}
}
