package iql

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/oidset"
)

// Options tunes the engine.
type Options struct {
	// Expansion selects the path-evaluation strategy (default forward,
	// as in the paper's prototype).
	Expansion Expansion
	// Budget bounds the number of views touched during one expansion;
	// <= 0 applies 1 << 20. The budget may be consumed in full: an
	// expansion touching exactly Budget views succeeds, one more fails.
	Budget int
	// Now supplies the clock for date functions; nil means time.Now.
	Now func() time.Time
	// Rank orders result rows by relevance: the summed occurrence
	// counts of the query's (non-negated) phrases in each view's
	// content. Ties order by OID. Without phrases, ranking leaves the
	// OID order.
	Rank bool
	// Parallelism is the worker count for query execution: frontier
	// expansion, backward ancestor verification, union and join
	// fan-out, and residual filtering all shard across this many
	// workers when a stage carries enough work. <= 0 applies
	// runtime.GOMAXPROCS(0); 1 preserves fully serial execution.
	// Results are identical at any setting: rows are sorted before
	// return, so only internal evaluation order varies.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 1 << 20
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Engine evaluates iQL queries against a Store. An Engine is immutable
// after construction and safe for concurrent Query/Exec calls.
type Engine struct {
	store Store
	opts  Options
}

// NewEngine returns an engine over the store.
func NewEngine(store Store, opts Options) *Engine {
	return &Engine{store: store, opts: opts.withDefaults()}
}

// Result is the outcome of a query. Rows have one column for path,
// predicate and union queries and two columns (left, right) for joins.
type Result struct {
	Columns []string
	Rows    [][]catalog.OID
	// Scores aligns with Rows when the engine ranked the result
	// (Options.Rank); nil otherwise.
	Scores []float64
	Plan   *PlanInfo
}

// Count returns the number of result rows (the "# of Results" column of
// Table 4 in the paper).
func (r *Result) Count() int { return len(r.Rows) }

// OIDs returns the distinct OIDs of the first result column in ascending
// order.
func (r *Result) OIDs() []catalog.OID {
	seen := oidset.New(0)
	for _, row := range r.Rows {
		if len(row) > 0 {
			seen.Add(row[0])
		}
	}
	return seen.Slice()
}

// Query parses and evaluates an iQL query string.
func (e *Engine) Query(src string) (*Result, error) {
	q, err := ParseWith(src, ParseOptions{Now: e.opts.Now})
	if err != nil {
		return nil, err
	}
	return e.Exec(q)
}

// Exec evaluates a parsed query.
func (e *Engine) Exec(q Query) (*Result, error) {
	plan := &PlanInfo{}
	ctx := newEvalCtx(e.store, plan, e.opts.Parallelism)
	rows, cols, err := e.exec(ctx, q)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols, Rows: rows, Plan: plan}
	if e.opts.Rank {
		e.rank(q, res)
	}
	return res, nil
}

// rank orders result rows by the summed content-occurrence counts of
// the query's non-negated phrases (a simple tf relevance score).
func (e *Engine) rank(q Query, res *Result) {
	phrases := collectPhrases(q)
	if len(phrases) == 0 || len(res.Rows) == 0 {
		res.Scores = make([]float64, len(res.Rows))
		return
	}
	freqs := make([]map[catalog.OID]int, len(phrases))
	for i, p := range phrases {
		freqs[i] = e.store.ContentPhraseFreqs(p)
	}
	type scored struct {
		row   []catalog.OID
		score float64
	}
	rows := make([]scored, len(res.Rows))
	for i, row := range res.Rows {
		s := 0.0
		for _, col := range row {
			for _, f := range freqs {
				s += float64(f[col])
			}
		}
		rows[i] = scored{row: row, score: s}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].score > rows[j].score })
	res.Scores = make([]float64, len(rows))
	for i, r := range rows {
		res.Rows[i] = r.row
		res.Scores[i] = r.score
	}
}

// collectPhrases gathers the non-negated phrases of a query's
// predicates in syntax order.
func collectPhrases(q Query) []string {
	var out []string
	var fromExpr func(e Expr, negated bool)
	fromExpr = func(e Expr, negated bool) {
		switch x := e.(type) {
		case *AndExpr:
			fromExpr(x.L, negated)
			fromExpr(x.R, negated)
		case *OrExpr:
			fromExpr(x.L, negated)
			fromExpr(x.R, negated)
		case *NotExpr:
			fromExpr(x.E, !negated)
		case *PhraseExpr:
			if !negated {
				out = append(out, x.Phrase)
			}
		}
	}
	var fromQuery func(Query)
	fromQuery = func(q Query) {
		switch x := q.(type) {
		case *PredQuery:
			fromExpr(x.Pred, false)
		case *PathQuery:
			for _, s := range x.Steps {
				if s.Pred != nil {
					fromExpr(s.Pred, false)
				}
			}
		case *UnionQuery:
			for _, a := range x.Args {
				fromQuery(a)
			}
		case *JoinQuery:
			fromQuery(x.Left)
			fromQuery(x.Right)
		}
	}
	fromQuery(q)
	return out
}

func (e *Engine) exec(ctx *evalCtx, q Query) ([][]catalog.OID, []string, error) {
	switch x := q.(type) {
	case *PredQuery:
		ctx.plan.notef("predicate over all views: %s", x.Pred)
		oids := ctx.resolveStep(Step{Axis: Descendant, Pred: x.Pred})
		return singleColumn(oids), []string{"view"}, nil
	case *PathQuery:
		oids, err := e.evalPath(ctx, x)
		if err != nil {
			return nil, nil, err
		}
		return singleColumn(oids), []string{"view"}, nil
	case *UnionQuery:
		return e.evalUnion(ctx, x)
	case *JoinQuery:
		return e.evalJoin(ctx, x)
	case *DeleteQuery:
		return nil, nil, fmt.Errorf("iql: engine is read-only; execute delete statements through the PDSMS")
	default:
		return nil, nil, fmt.Errorf("iql: unknown query node %T", q)
	}
}

func singleColumn(oids []catalog.OID) [][]catalog.OID {
	rows := make([][]catalog.OID, len(oids))
	for i, o := range oids {
		rows[i] = []catalog.OID{o}
	}
	return rows
}

// evalUnion evaluates the duplicate-free union, running the branch
// queries concurrently when the engine is parallel (each branch is an
// independent subquery sharing this query's memoized index lookups).
func (e *Engine) evalUnion(ctx *evalCtx, q *UnionQuery) ([][]catalog.OID, []string, error) {
	ctx.plan.notef("union of %d queries", len(q.Args))
	branches := make([][][]catalog.OID, len(q.Args))
	errs := make([]error, len(q.Args))
	run := func(i int) { branches[i], _, errs[i] = e.exec(ctx, q.Args[i]) }
	if ctx.par > 1 && len(q.Args) > 1 {
		var wg sync.WaitGroup
		for i := range q.Args {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range q.Args {
			run(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	seen := oidset.New(0)
	for _, rows := range branches {
		for _, row := range rows {
			if len(row) == 1 {
				seen.Add(row[0])
			}
		}
	}
	return singleColumn(seen.Slice()), []string{"view"}, nil
}

// evalPath evaluates a path expression with the configured expansion
// strategy. Under automatic expansion the anchor steps are resolved once
// and the already-resolved candidate lists are threaded into the chosen
// strategy, so no step is resolved twice.
func (e *Engine) evalPath(ctx *evalCtx, q *PathQuery) ([]catalog.OID, error) {
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("iql: empty path")
	}
	strategy := e.opts.Expansion
	var first, last []catalog.OID
	haveFirst, haveLast := false, false
	if strategy == AutoExpansion {
		// Anchor on the cheaper end: compare candidate counts of the
		// first and last steps.
		first = ctx.resolveStep(q.Steps[0])
		haveFirst = true
		if len(q.Steps) == 1 {
			ctx.plan.notef("single-step path: %d matches", len(first))
			return first, nil
		}
		last = ctx.resolveStep(q.Steps[len(q.Steps)-1])
		haveLast = true
		if len(last) <= len(first) {
			strategy = BackwardExpansion
		} else {
			strategy = ForwardExpansion
		}
		ctx.plan.notef("auto expansion: first=%d last=%d → %s",
			len(first), len(last), strategy)
	}
	if strategy == BackwardExpansion {
		return e.evalPathBackward(ctx, q, last, haveLast)
	}
	return e.evalPathForward(ctx, q, first, haveFirst)
}

// evalPathForward implements the paper's strategy: resolve the first
// step via indexes, then expand forward through the group replica,
// filtering at each step. Q8's large intermediate result sets arise
// here, exactly as §7.2 describes; each frontier is sharded across the
// engine's workers.
func (e *Engine) evalPathForward(ctx *evalCtx, q *PathQuery, first []catalog.OID, haveFirst bool) ([]catalog.OID, error) {
	ctx.plan.notef("forward expansion over %d steps", len(q.Steps))
	cur := first
	if !haveFirst {
		cur = ctx.resolveStep(q.Steps[0])
	}
	ctx.plan.notef("  step 1 %s: %d matches", q.Steps[0], len(cur))
	bud := newBudget(e.opts.Budget)
	for i := 1; i < len(q.Steps); i++ {
		step := q.Steps[i]
		var matched *oidset.Set
		var touched int
		var err error
		switch step.Axis {
		case Child:
			matched, touched, err = ctx.expandChild(step, cur, bud)
		case Descendant:
			matched, touched, err = ctx.expandDescendant(step, cur, bud)
		default:
			matched = oidset.New(0)
		}
		ctx.plan.addIntermediates(touched)
		if err != nil {
			return nil, err
		}
		cur = matched.Slice()
		ctx.plan.notef("  step %d %s: %d matches", i+1, step, len(cur))
	}
	return cur, nil
}

// evalPathBackward resolves the final step via indexes and verifies the
// ancestor constraints by walking the reverse edges — the alternative
// processing strategy §7.2 proposes for queries like Q8. Every
// candidate's verification walk is independent, so candidates shard
// across the engine's workers.
func (e *Engine) evalPathBackward(ctx *evalCtx, q *PathQuery, last []catalog.OID, haveLast bool) ([]catalog.OID, error) {
	ctx.plan.notef("backward expansion over %d steps", len(q.Steps))
	lastIdx := len(q.Steps) - 1
	candidates := last
	if !haveLast {
		candidates = ctx.resolveStep(q.Steps[lastIdx])
	}
	ctx.plan.notef("  step %d %s: %d candidates", lastIdx+1, q.Steps[lastIdx], len(candidates))
	if lastIdx == 0 {
		return candidates, nil
	}
	bud := newBudget(e.opts.Budget)
	keep := make([]bool, len(candidates))
	w := workersFor(ctx.par, len(candidates))
	errs := make([]error, w)
	parRange(len(candidates), w, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			ok, err := e.verifyAncestors(ctx, q.Steps, lastIdx, candidates[i], bud)
			if err != nil {
				errs[worker] = err
				return
			}
			keep[i] = ok
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []catalog.OID
	for i, ok := range keep {
		if ok {
			out = append(out, candidates[i])
		}
	}
	ctx.plan.notef("  verified: %d of %d candidates", len(out), len(candidates))
	return out, nil
}

// verifyAncestors checks that a candidate for step k has an ancestor
// chain matching steps k-1 ... 0.
func (e *Engine) verifyAncestors(ctx *evalCtx, steps []Step, k int, oid catalog.OID, bud *expansionBudget) (bool, error) {
	if k == 0 {
		return true, nil
	}
	step := steps[k]
	prev := steps[k-1]
	// Gather the views reachable backwards along this step's axis.
	var ancestors []catalog.OID
	switch step.Axis {
	case Child:
		ancestors = ctx.store.Parents(oid)
		ctx.plan.addIntermediates(len(ancestors))
	case Descendant:
		visited := oidset.New(0)
		frontier := []catalog.OID{oid}
		touched := 0
		for len(frontier) > 0 {
			var next []catalog.OID
			for _, f := range frontier {
				for _, p := range ctx.store.Parents(f) {
					if !visited.Add(p) {
						continue
					}
					touched++
					if !bud.take(1) {
						ctx.plan.addIntermediates(touched)
						return false, errBudget
					}
					ancestors = append(ancestors, p)
					next = append(next, p)
				}
			}
			frontier = next
		}
		ctx.plan.addIntermediates(touched)
	}
	for _, a := range ancestors {
		if !ctx.matchStep(prev, a) {
			continue
		}
		ok, err := e.verifyAncestors(ctx, steps, k-1, a, bud)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// evalJoin evaluates an equi-join with a hash join. The rule-based
// planner builds the hash table on the smaller input and probes with the
// larger one; output rows are always (left, right). The two inputs are
// evaluated concurrently when the engine is parallel, and probing shards
// the probe side across workers.
func (e *Engine) evalJoin(ctx *evalCtx, q *JoinQuery) ([][]catalog.OID, []string, error) {
	var leftRows, rightRows [][]catalog.OID
	var leftErr, rightErr error
	if ctx.par > 1 {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			leftRows, _, leftErr = e.exec(ctx, q.Left)
		}()
		go func() {
			defer wg.Done()
			rightRows, _, rightErr = e.exec(ctx, q.Right)
		}()
		wg.Wait()
	} else {
		leftRows, _, leftErr = e.exec(ctx, q.Left)
		if leftErr == nil {
			rightRows, _, rightErr = e.exec(ctx, q.Right)
		}
	}
	if leftErr != nil {
		return nil, nil, leftErr
	}
	if rightErr != nil {
		return nil, nil, rightErr
	}

	build, probe := rightRows, leftRows
	buildField, probeField := q.On[1], q.On[0]
	buildIsRight := true
	if len(leftRows) < len(rightRows) {
		build, probe = leftRows, rightRows
		buildField, probeField = q.On[0], q.On[1]
		buildIsRight = false
	}
	ctx.plan.notef("join: %d x %d rows on %s = %s (hash build on %s side)",
		len(leftRows), len(rightRows), q.On[0], q.On[1],
		map[bool]string{true: "right", false: "left"}[buildIsRight])

	hash := make(map[string][]catalog.OID, len(build))
	for _, row := range build {
		if len(row) != 1 {
			continue
		}
		key, ok := e.fieldKey(ctx, buildField, row[0])
		if !ok {
			continue
		}
		hash[key] = append(hash[key], row[0])
	}
	w := workersFor(ctx.par, len(probe))
	parts := make([][][]catalog.OID, w)
	parRange(len(probe), w, func(worker, lo, hi int) {
		var out [][]catalog.OID
		for _, row := range probe[lo:hi] {
			if len(row) != 1 {
				continue
			}
			key, ok := e.fieldKey(ctx, probeField, row[0])
			if !ok {
				continue
			}
			for _, b := range hash[key] {
				if buildIsRight {
					out = append(out, []catalog.OID{row[0], b})
				} else {
					out = append(out, []catalog.OID{b, row[0]})
				}
			}
		}
		parts[worker] = out
	})
	var out [][]catalog.OID
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, []string{q.LeftAs, q.RightAs}, nil
}

// fieldKey extracts a join key from a view. Keys compare as strings;
// empty values never join.
func (e *Engine) fieldKey(ctx *evalCtx, f FieldRef, oid catalog.OID) (string, bool) {
	switch f.Kind {
	case FieldName:
		n := ctx.store.NameOf(oid)
		return n, n != ""
	case FieldClass:
		entry, err := ctx.store.Entry(oid)
		if err != nil || entry.Class == "" {
			return "", false
		}
		return entry.Class, true
	case FieldTupleAttr:
		tc, ok := ctx.store.Tuple(oid)
		if !ok {
			return "", false
		}
		v, ok := tc.Get(f.Attr)
		if !ok || v.IsNull() {
			return "", false
		}
		return v.String(), true
	default:
		return "", false
	}
}
