package iql

import (
	"time"

	"repro/internal/obs"
)

// QueryStats is the per-query resource accounting the engine attaches
// to every Result: not just how long the query took, but what it cost —
// rows scanned by residual filters, index postings materialized, views
// expanded, the BFS frontier high-water mark — plus the planner's
// physical choices. The query log retains it for every completed query
// and EXPLAIN renders it as a final "stats" span.
type QueryStats struct {
	// ElapsedNs is the engine-side latency (parse + plan + eval) in
	// nanoseconds; the facade lifts it to end-to-end latency.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Rows is the result row count.
	Rows int64 `json:"rows"`
	// RowsScanned counts candidate views examined by residual filters,
	// including full catalog scans.
	RowsScanned int64 `json:"rows_scanned"`
	// PostingsRead counts index postings materialized from the name,
	// content, tuple and class indexes.
	PostingsRead int64 `json:"postings_read"`
	// ResidualFilters counts residual-filter stages that ran (the
	// adaptive planner elides index-covered ones).
	ResidualFilters int64 `json:"residual_filters"`
	// ViewsExpanded counts views touched during path expansion (the
	// §7.2 intermediate-result metric).
	ViewsExpanded int64 `json:"views_expanded"`
	// PeakFrontier is the largest expansion frontier any stage carried.
	PeakFrontier int64 `json:"peak_frontier"`
	// IndexAccesses counts index-backed candidate fetches.
	IndexAccesses int64 `json:"index_accesses"`
	// EstimatedRows is the cost-based planner's pre-execution bound
	// (-1 when the rule planner made no estimate).
	EstimatedRows int64 `json:"estimated_rows"`
	// ParallelStages / SerialStages count per-stage fan-out decisions.
	ParallelStages int64 `json:"parallel_stages"`
	SerialStages   int64 `json:"serial_stages"`
	// Strategy is the top-level physical strategy ("forward",
	// "backward", "single step", "predicate", "union", "join").
	Strategy string `json:"strategy"`
	// Planner names the decision maker ("rule" or "adaptive").
	Planner string `json:"planner"`
	// CacheHit marks results served from the facade's query cache (set
	// by the facade; always false engine-side).
	CacheHit bool `json:"cache_hit"`
}

// logRecord converts the stats into the obs query-log shape.
func (s QueryStats) logRecord() obs.QueryStatsRecord {
	return obs.QueryStatsRecord{
		RowsScanned:     s.RowsScanned,
		PostingsRead:    s.PostingsRead,
		ResidualFilters: s.ResidualFilters,
		ViewsExpanded:   s.ViewsExpanded,
		PeakFrontier:    s.PeakFrontier,
		IndexAccesses:   s.IndexAccesses,
		EstimatedRows:   s.EstimatedRows,
	}
}

// record appends one completed string-level query to the engine's query
// log (a no-op without one). Slow queries retain the full trace render:
// an already-traced run renders for free; an untraced one is
// re-evaluated once with tracing, doubling the cost of queries over the
// threshold — the threshold should sit well above healthy-traffic p99.
func (e *Engine) record(src string, res *Result, err error, elapsed time.Duration, trace *obs.Trace) {
	l := e.opts.QueryLog
	if l == nil {
		return
	}
	rec := obs.QueryRecord{Query: src, DurationNs: int64(elapsed)}
	if err != nil {
		rec.Error = err.Error()
	} else if res != nil {
		rec.Rows = int64(len(res.Rows))
		rec.Strategy = res.Stats.Strategy
		rec.Stale = len(res.Plan.StaleSources) > 0
		rec.Stats = res.Stats.logRecord()
	}
	if l.IsSlow(elapsed) {
		switch {
		case trace != nil:
			rec.Trace = trace.Render()
		case err == nil:
			tr := obs.NewTrace("query " + src)
			if _, rerr := e.query(src, tr); rerr == nil {
				tr.Finish()
				rec.Trace = tr.Render()
			}
		}
	}
	l.Record(rec)
}
