package iql

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/oidset"
)

// parThreshold is the minimum number of items a data-parallel stage must
// carry before the evaluator fans it out across workers; below it the
// goroutine and merge overhead exceeds the work saved.
const parThreshold = 64

// workersFor caps the configured worker count by the work available.
func workersFor(par, n int) int {
	if par <= 1 || n < parThreshold {
		return 1
	}
	if par > n {
		par = n
	}
	return par
}

// parRange splits [0, n) into w contiguous shards and runs fn(worker,
// lo, hi) on each concurrently. With w <= 1 it runs inline, so serial
// execution takes no goroutine at all.
func parRange(n, w int, fn func(worker, lo, hi int)) {
	if w <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// workerSpan starts a per-worker span under parent for one parRange
// shard. Spans are only worth their cost when the stage actually fanned
// out, so a serial stage (w <= 1) records none — the parent span already
// carries its timing.
func workerSpan(parent *obs.Span, w, worker, lo, hi int) *obs.Span {
	if parent == nil || w <= 1 {
		return nil
	}
	ws := startSpan(parent, "worker %d", worker)
	ws.SetInt("from", int64(lo))
	ws.SetInt("to", int64(hi))
	return ws
}

// errBudget reports an exceeded expansion budget.
var errBudget = errors.New("iql: expansion budget exceeded")

// expansionBudget bounds the views touched during one expansion, shared
// atomically by all workers. The budget may be consumed in full before
// an overrun is reported: with Budget = N the N-th view is still
// processed and only the N+1-th fails.
type expansionBudget struct{ left atomic.Int64 }

func newBudget(n int) *expansionBudget {
	b := &expansionBudget{}
	b.left.Store(int64(n))
	return b
}

// take consumes n units and reports whether the budget still holds.
func (b *expansionBudget) take(n int) bool { return b.left.Add(-int64(n)) >= 0 }

// expandChild returns the views matching step among the children of the
// cur views (the '/' axis) and the number of child edges traversed.
// Children reached over several edges are counted per edge, as the
// serial evaluator always did.
func (c *evalCtx) expandChild(step Step, cur []catalog.OID, bud *expansionBudget, sp *obs.Span) (*oidset.Set, int, error) {
	c.plan.maxFrontier(len(cur))
	w := c.workers(len(cur), costChildEdge+stepMatchCost(step))
	sets := make([]*oidset.Set, w)
	edges := make([]int, w)
	var overrun atomic.Bool
	parRange(len(cur), w, func(worker, lo, hi int) {
		ws := workerSpan(sp, w, worker, lo, hi)
		local := oidset.New(0)
		var buf []catalog.OID
		for _, oid := range cur[lo:hi] {
			buf = c.children(buf[:0], oid)
			edges[worker] += len(buf)
			if !bud.take(len(buf)) {
				overrun.Store(true)
				break
			}
			for _, ch := range buf {
				if c.matchStep(step, ch) {
					local.Add(ch)
				}
			}
		}
		sets[worker] = local
		ws.SetInt("edges", int64(edges[worker]))
		ws.Finish()
	})
	touched := 0
	for _, n := range edges {
		touched += n
	}
	if overrun.Load() {
		return nil, touched, errBudget
	}
	matched := sets[0]
	for _, s := range sets[1:] {
		matched.UnionWith(s)
	}
	return matched, touched, nil
}

// expandDescendant returns the views matching step among all views
// reachable from cur through group edges (the '//' axis), cycle-safe,
// and the number of distinct views discovered. The BFS is
// level-synchronous: each frontier is sharded across workers, the
// workers' discoveries are deduplicated against the shared visited set
// at the level barrier (so counters and the budget see each view exactly
// once, as in serial execution), and predicate matching then runs
// sharded over the newly discovered views.
func (c *evalCtx) expandDescendant(step Step, cur []catalog.OID, bud *expansionBudget, sp *obs.Span) (*oidset.Set, int, error) {
	matched := oidset.New(0)
	visited := oidset.New(0)
	touched := 0
	frontier := cur
	for level := 1; len(frontier) > 0; level++ {
		c.plan.maxFrontier(len(frontier))
		lv := startSpan(sp, "level %d", level)
		lv.SetInt("frontier", int64(len(frontier)))
		// Phase 1: sharded child discovery. visited is read-only here;
		// worker-local seen sets keep shard-internal duplicates out.
		w := c.workers(len(frontier), costChildEdge)
		found := make([][]catalog.OID, w)
		parRange(len(frontier), w, func(worker, lo, hi int) {
			ws := workerSpan(lv, w, worker, lo, hi)
			seen := oidset.New(0)
			var buf, out []catalog.OID
			for _, oid := range frontier[lo:hi] {
				buf = c.children(buf[:0], oid)
				for _, ch := range buf {
					if visited.Contains(ch) || !seen.Add(ch) {
						continue
					}
					out = append(out, ch)
				}
			}
			found[worker] = out
			ws.SetInt("discovered", int64(len(out)))
			ws.Finish()
		})
		// Barrier: global dedup in worker order keeps the traversal
		// deterministic.
		var next []catalog.OID
		for _, out := range found {
			for _, ch := range out {
				if visited.Add(ch) {
					next = append(next, ch)
				}
			}
		}
		touched += len(next)
		lv.SetInt("discovered", int64(len(next)))
		if !bud.take(len(next)) {
			lv.Set("error", errBudget.Error())
			lv.Finish()
			return nil, touched, errBudget
		}
		// Phase 2: sharded predicate matching over the new views.
		w = c.workers(len(next), stepMatchCost(step))
		sets := make([]*oidset.Set, w)
		parRange(len(next), w, func(worker, lo, hi int) {
			local := oidset.New(0)
			for _, ch := range next[lo:hi] {
				if c.matchStep(step, ch) {
					local.Add(ch)
				}
			}
			sets[worker] = local
		})
		for _, s := range sets {
			matched.UnionWith(s)
		}
		lv.Finish()
		frontier = next
	}
	return matched, touched, nil
}

// filterStep applies a step's full pattern + predicate filter to a
// candidate list, sharding across workers when the list is large.
// Output order follows input order: shards are contiguous and
// concatenated in shard order, so a sorted input stays sorted.
func (c *evalCtx) filterStep(s Step, candidates []catalog.OID, sp *obs.Span) []catalog.OID {
	w := c.workers(len(candidates), stepMatchCost(s))
	if w == 1 {
		out := candidates[:0:0]
		for _, oid := range candidates {
			if c.matchStep(s, oid) {
				out = append(out, oid)
			}
		}
		return out
	}
	parts := make([][]catalog.OID, w)
	parRange(len(candidates), w, func(worker, lo, hi int) {
		ws := workerSpan(sp, w, worker, lo, hi)
		var out []catalog.OID
		for _, oid := range candidates[lo:hi] {
			if c.matchStep(s, oid) {
				out = append(out, oid)
			}
		}
		parts[worker] = out
		ws.SetInt("matches", int64(len(out)))
		ws.Finish()
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]catalog.OID, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
