package iql

import (
	"strings"

	"repro/internal/core"
	"repro/internal/textindex"
	"repro/internal/wildcard"
)

// MatchView evaluates a predicate expression directly against a live
// resource view, without any index: phrases tokenize and scan the
// content component, comparisons read the tuple component, class
// predicates consult isA (nil isA falls back to exact class equality).
// This is the evaluation mode of continuous queries (information
// filters, §4.4.2 of the paper): each incoming view is tested the moment
// it is pushed.
//
// Infinite content never matches a phrase (only its indexed window
// would; a filter cannot scan forever); content larger than maxContent
// bytes is truncated, and maxContent <= 0 applies 4 MiB.
func MatchView(e Expr, v core.ResourceView, isA func(class, ancestor string) bool, maxContent int64) bool {
	if maxContent <= 0 {
		maxContent = 4 << 20
	}
	m := &liveMatcher{view: v, isA: isA, maxContent: maxContent}
	return m.eval(e)
}

type liveMatcher struct {
	view       core.ResourceView
	isA        func(class, ancestor string) bool
	maxContent int64
	tokens     []string
	tokenized  bool
}

func (m *liveMatcher) contentTokens() []string {
	if m.tokenized {
		return m.tokens
	}
	m.tokenized = true
	c := m.view.Content()
	if core.IsEmptyContent(c) || !c.Finite() {
		return nil
	}
	b, err := core.ReadAllContent(c, m.maxContent)
	if err != nil {
		return nil
	}
	m.tokens = textindex.Tokenize(string(b))
	return m.tokens
}

func (m *liveMatcher) eval(e Expr) bool {
	switch x := e.(type) {
	case *AndExpr:
		return m.eval(x.L) && m.eval(x.R)
	case *OrExpr:
		return m.eval(x.L) || m.eval(x.R)
	case *NotExpr:
		return !m.eval(x.E)
	case *PhraseExpr:
		return containsPhrase(m.contentTokens(), textindex.Tokenize(x.Phrase))
	case *ClassExpr:
		class := m.view.Class()
		if class == "" {
			return false
		}
		if m.isA != nil {
			return m.isA(class, x.Class)
		}
		return class == x.Class
	case *HasExpr:
		// Branch existence needs graph navigation, which a live filter
		// evaluated per incoming view does not have; it never matches.
		return false
	case *CmpExpr:
		if x.Attr == "name" && x.Value.Kind == core.DomainString {
			matched := wildcard.Match(x.Value.Str, m.view.Name())
			switch x.Op {
			case OpEq:
				return matched
			case OpNe:
				return !matched
			default:
				return false
			}
		}
		val, ok := m.view.Tuple().Get(x.Attr)
		if !ok {
			return false
		}
		cmp, err := core.Compare(val, x.Value)
		if err != nil {
			return false
		}
		switch x.Op {
		case OpEq:
			return cmp == 0
		case OpNe:
			return cmp != 0
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		case OpGe:
			return cmp >= 0
		}
	}
	return false
}

// containsPhrase reports whether needle occurs as a consecutive
// subsequence of haystack (both already tokenized and lower-cased).
func containsPhrase(haystack, needle []string) bool {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, w := range needle {
			if !strings.EqualFold(haystack[i+j], w) {
				continue outer
			}
		}
		return true
	}
	return false
}
