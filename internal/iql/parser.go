package iql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// ParseOptions configures parsing.
type ParseOptions struct {
	// Now supplies the clock used to resolve date functions such as
	// yesterday(); nil means time.Now.
	Now func() time.Time
}

// Parse parses an iQL query.
func Parse(src string) (Query, error) { return ParseWith(src, ParseOptions{}) }

// ParseWith parses an iQL query with explicit options.
func ParseWith(src string, opts ParseOptions) (Query, error) {
	q, _, err := parseTracked(src, opts)
	return q, err
}

// parseTracked is ParseWith additionally reporting whether the parse
// consulted the clock (now()/today()/yesterday()). A clock-independent
// parse yields the same AST on every call, so the engine may cache it;
// a clock-dependent one must be re-parsed per query.
func parseTracked(src string, opts ParseOptions) (Query, bool, error) {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	usedClock := false
	clock := opts.Now
	now := func() time.Time {
		usedClock = true
		return clock()
	}
	toks, err := Lex(src)
	if err != nil {
		return nil, false, err
	}
	p := &parser{toks: toks, now: now}
	var q Query
	if t := p.peek(); t.Kind == TokWord && strings.EqualFold(t.Text, "delete") {
		p.next()
		inner, err := p.parseQuery()
		if err != nil {
			return nil, false, err
		}
		q = &DeleteQuery{Inner: inner}
	} else {
		var err error
		q, err = p.parseQuery()
		if err != nil {
			return nil, false, err
		}
	}
	if p.peek().Kind != TokEOF {
		return nil, false, p.errf("unexpected %s after query", p.peek().Kind)
	}
	return q, usedClock, nil
}

type parser struct {
	toks []Token
	pos  int
	now  func() time.Time
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }
func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// keyword reports whether the next token is the given case-insensitive
// bare word, consuming it when so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokWord && strings.EqualFold(t.Text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		p.backup()
		return t, p.errf("expected %s, found %s %q", kind, t.Kind, t.Text)
	}
	return t, nil
}

func (p *parser) parseQuery() (Query, error) {
	t := p.peek()
	switch {
	case t.Kind == TokWord && strings.EqualFold(t.Text, "union") && p.lookaheadIsParen():
		return p.parseUnion()
	case t.Kind == TokWord && strings.EqualFold(t.Text, "join") && p.lookaheadIsParen():
		return p.parseJoin()
	case t.Kind == TokSlash || t.Kind == TokSlashSlash:
		return p.parsePath()
	case t.Kind == TokLBracket:
		p.next()
		e, err := p.parseBoolExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		return &PredQuery{Pred: e}, nil
	default:
		e, err := p.parseBoolExpr()
		if err != nil {
			return nil, err
		}
		return &PredQuery{Pred: e}, nil
	}
}

func (p *parser) lookaheadIsParen() bool {
	return p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokLParen
}

func (p *parser) parseUnion() (Query, error) {
	p.next() // union
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Query
	for {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		args = append(args, q)
		if p.peek().Kind == TokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if len(args) < 2 {
		return nil, p.errf("union needs at least two arguments")
	}
	return &UnionQuery{Args: args}, nil
}

func (p *parser) parseJoin() (Query, error) {
	p.next() // join
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	left, leftAs, err := p.parseAliasedQuery()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	right, rightAs, err := p.parseAliasedQuery()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	lf, err := p.parseFieldRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEq); err != nil {
		return nil, err
	}
	rf, err := p.parseFieldRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	// Normalize operand order to (left alias, right alias).
	switch {
	case lf.Alias == leftAs && rf.Alias == rightAs:
	case lf.Alias == rightAs && rf.Alias == leftAs:
		lf, rf = rf, lf
	default:
		return nil, p.errf("join condition aliases %q, %q do not match %q, %q",
			lf.Alias, rf.Alias, leftAs, rightAs)
	}
	return &JoinQuery{Left: left, LeftAs: leftAs, Right: right, RightAs: rightAs,
		On: [2]FieldRef{lf, rf}}, nil
}

func (p *parser) parseAliasedQuery() (Query, string, error) {
	q, err := p.parseQuery()
	if err != nil {
		return nil, "", err
	}
	if !p.keyword("as") {
		return nil, "", p.errf("expected 'as <alias>' after join operand")
	}
	alias, err := p.expect(TokWord)
	if err != nil {
		return nil, "", err
	}
	return q, alias.Text, nil
}

func (p *parser) parseFieldRef() (FieldRef, error) {
	t, err := p.expect(TokWord)
	if err != nil {
		return FieldRef{}, err
	}
	parts := strings.Split(t.Text, ".")
	switch {
	case len(parts) == 2 && strings.EqualFold(parts[1], "name"):
		return FieldRef{Alias: parts[0], Kind: FieldName}, nil
	case len(parts) == 2 && strings.EqualFold(parts[1], "class"):
		return FieldRef{Alias: parts[0], Kind: FieldClass}, nil
	case len(parts) == 3 && strings.EqualFold(parts[1], "tuple"):
		return FieldRef{Alias: parts[0], Kind: FieldTupleAttr, Attr: parts[2]}, nil
	default:
		return FieldRef{}, p.errf("invalid join field %q (use alias.name, alias.class or alias.tuple.attr)", t.Text)
	}
}

func (p *parser) parsePath() (Query, error) {
	var steps []Step
	for {
		t := p.peek()
		var axis Axis
		switch t.Kind {
		case TokSlash:
			axis = Child
		case TokSlashSlash:
			axis = Descendant
		default:
			if len(steps) == 0 {
				return nil, p.errf("expected path step")
			}
			return &PathQuery{Steps: steps}, nil
		}
		p.next()
		step := Step{Axis: axis}
		if p.peek().Kind == TokWord {
			// A bare word directly after the axis is the name pattern —
			// unless it is an 'as' that belongs to an enclosing join.
			if !strings.EqualFold(p.peek().Text, "as") {
				step.Pattern = p.next().Text
			}
		}
		if p.peek().Kind == TokLBracket {
			p.next()
			e, err := p.parseBoolExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			step.Pred = e
		}
		steps = append(steps, step)
	}
}

// parseBoolExpr parses or-expressions (lowest precedence).
func (p *parser) parseBoolExpr() (Expr, error) {
	left, err := p.parseBoolTerm()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		right, err := p.parseBoolTerm()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseBoolTerm() (Expr, error) {
	left, err := p.parseBoolFactor()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		right, err := p.parseBoolFactor()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseBoolFactor() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokWord && strings.EqualFold(t.Text, "has") && p.lookaheadIsParen():
		p.next() // has
		p.next() // (
		inner, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &HasExpr{Steps: inner.(*PathQuery).Steps}, nil
	case t.Kind == TokWord && strings.EqualFold(t.Text, "not"):
		p.next()
		e, err := p.parseBoolFactor()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	case t.Kind == TokLParen:
		p.next()
		e, err := p.parseBoolExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokString:
		p.next()
		if t.Text == "" {
			return nil, p.errf("empty phrase")
		}
		return &PhraseExpr{Phrase: t.Text}, nil
	case t.Kind == TokWord:
		return p.parseComparison()
	default:
		return nil, p.errf("expected predicate, found %s %q", t.Kind, t.Text)
	}
}

func (p *parser) parseComparison() (Expr, error) {
	attr, err := p.expect(TokWord)
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	var op CmpOp
	switch opTok.Kind {
	case TokEq:
		op = OpEq
	case TokNe:
		op = OpNe
	case TokLt:
		op = OpLt
	case TokLe:
		op = OpLe
	case TokGt:
		op = OpGt
	case TokGe:
		op = OpGe
	default:
		p.backup()
		return nil, p.errf("expected comparison operator after %q", attr.Text)
	}
	value, text, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(attr.Text, "class") && op == OpEq && value.Kind == core.DomainString {
		return &ClassExpr{Class: value.Str}, nil
	}
	return &CmpExpr{Attr: strings.ToLower(attr.Text), Op: op, Value: value, ValueText: text}, nil
}

func (p *parser) parseLiteral() (core.Value, string, error) {
	t := p.next()
	switch t.Kind {
	case TokString:
		return core.String(t.Text), quoteIQL(t.Text), nil
	case TokDate:
		tm, err := parseDate(t.Text)
		if err != nil {
			p.backup()
			return core.Value{}, "", p.errf("invalid date %q: %v", t.Text, err)
		}
		return core.Time(tm), "@" + t.Text, nil
	case TokWord:
		// A function call such as yesterday() / today() / now().
		if p.peek().Kind == TokLParen {
			p.next()
			if _, err := p.expect(TokRParen); err != nil {
				return core.Value{}, "", err
			}
			v, err := p.callDateFunc(t.Text)
			if err != nil {
				return core.Value{}, "", err
			}
			return v, t.Text + "()", nil
		}
		// A number.
		if n, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
			return core.Int(n), t.Text, nil
		}
		if f, err := strconv.ParseFloat(t.Text, 64); err == nil {
			return core.Float(f), t.Text, nil
		}
		switch strings.ToLower(t.Text) {
		case "true":
			return core.Bool(true), "true", nil
		case "false":
			return core.Bool(false), "false", nil
		}
		p.backup()
		return core.Value{}, "", p.errf("invalid literal %q", t.Text)
	default:
		p.backup()
		return core.Value{}, "", p.errf("expected literal, found %s %q", t.Kind, t.Text)
	}
}

func (p *parser) callDateFunc(name string) (core.Value, error) {
	day := 24 * time.Hour
	switch strings.ToLower(name) {
	case "now":
		return core.Time(p.now()), nil
	case "today":
		return core.Time(p.now().Truncate(day)), nil
	case "yesterday":
		return core.Time(p.now().Truncate(day).Add(-day)), nil
	default:
		return core.Value{}, p.errf("unknown function %q", name)
	}
}

// parseDate accepts dd.mm.yyyy (the paper's Q3 notation) and yyyy-mm-dd.
func parseDate(s string) (time.Time, error) {
	for _, layout := range []string{"02.01.2006", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("want dd.mm.yyyy or yyyy-mm-dd")
}
