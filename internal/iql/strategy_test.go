package iql

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// randomStore builds a random directed acyclic-ish graph (occasional
// back edges make cycles) of views with random names, classes and
// content drawn from tiny vocabularies.
func randomStore(rng *rand.Rand, n int) *fakeStore {
	f := newFakeStore()
	names := []string{"alpha", "beta", "gamma", "Introduction", "Conclusion", "papers", "figure"}
	classes := []string{"", core.ClassFolder, core.ClassLatexSection, core.ClassFigure, core.ClassFile}
	words := []string{"database", "systems", "tuning", "franklin", "stream"}
	for i := 1; i <= n; i++ {
		oid := catalog.OID(i)
		name := names[rng.Intn(len(names))]
		class := classes[rng.Intn(len(classes))]
		content := ""
		for w := 0; w < rng.Intn(4); w++ {
			content += words[rng.Intn(len(words))] + " "
		}
		var parents []catalog.OID
		if i > 1 {
			// One or two parents among earlier views (DAG edges).
			parents = append(parents, catalog.OID(1+rng.Intn(i-1)))
			if rng.Intn(3) == 0 {
				parents = append(parents, catalog.OID(1+rng.Intn(i-1)))
			}
		}
		f.add(oid, name, class, content, core.EmptyTuple(), parents...)
		// Occasional back edge → cycle.
		if i > 2 && rng.Intn(8) == 0 {
			from, to := oid, catalog.OID(1+rng.Intn(i-1))
			f.children[from] = append(f.children[from], to)
			f.parents[to] = append(f.parents[to], from)
		}
	}
	return f
}

// randomQuery builds a random path query of 1-3 steps.
func randomQuery(rng *rand.Rand) string {
	steps := 1 + rng.Intn(3)
	patterns := []string{"", "*", "alpha", "Introduction", "?eta", "gam*", "papers"}
	preds := []string{"", `[class="latex_section"]`, `["database"]`, `[class="figure" and "systems"]`, `["franklin" or "tuning"]`}
	q := ""
	for i := 0; i < steps; i++ {
		axis := "//"
		if i > 0 && rng.Intn(3) == 0 {
			axis = "/"
		}
		q += axis + patterns[rng.Intn(len(patterns))] + preds[rng.Intn(len(preds))]
	}
	return q
}

// TestExpansionStrategiesEquivalentOnRandomGraphs is the central
// evaluator property: forward, backward and automatic expansion return
// identical result sets on arbitrary graphs and path queries.
func TestExpansionStrategiesEquivalentOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		f := randomStore(rng, 20+rng.Intn(60))
		q := randomQuery(rng)
		fwd := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow})
		bwd := NewEngine(f, Options{Expansion: BackwardExpansion, Now: fixedNow})
		auto := NewEngine(f, Options{Expansion: AutoExpansion, Now: fixedNow})

		rf, err := fwd.Query(q)
		if err != nil {
			t.Fatalf("trial %d: forward %q: %v", trial, q, err)
		}
		rb, err := bwd.Query(q)
		if err != nil {
			t.Fatalf("trial %d: backward %q: %v", trial, q, err)
		}
		ra, err := auto.Query(q)
		if err != nil {
			t.Fatalf("trial %d: auto %q: %v", trial, q, err)
		}
		a, b, c := fmt.Sprint(rf.OIDs()), fmt.Sprint(rb.OIDs()), fmt.Sprint(ra.OIDs())
		if a != b || a != c {
			t.Fatalf("trial %d: query %q disagrees:\n forward  %s\n backward %s\n auto     %s",
				trial, q, a, b, c)
		}
	}
}

// TestForwardAgainstNaiveOracle checks forward expansion against a
// brute-force oracle that enumerates ancestor chains directly.
func TestForwardAgainstNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		f := randomStore(rng, 15+rng.Intn(30))
		q := randomQuery(rng)
		parsed, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		pq, ok := parsed.(*PathQuery)
		if !ok {
			continue
		}
		engine := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow})
		res, err := engine.Query(q)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, q, err)
		}
		oracle := naivePathEval(f, pq)
		got := fmt.Sprint(res.OIDs())
		want := fmt.Sprint(oracle)
		if got != want {
			t.Fatalf("trial %d: query %q: engine %s, oracle %s", trial, q, got, want)
		}
	}
}

// naivePathEval evaluates a path query by brute force: for every view,
// check whether some chain of views matching the steps ends at it.
func naivePathEval(f *fakeStore, q *PathQuery) []catalog.OID {
	plan := &PlanInfo{}
	ctx := newEvalCtx(f, plan, 1)
	// satisfiable(k, oid): oid matches step k and a valid chain for
	// steps 0..k-1 leads to it.
	memo := make(map[[2]int]bool)
	var satisfiable func(k int, oid catalog.OID) bool
	satisfiable = func(k int, oid catalog.OID) bool {
		key := [2]int{k, int(oid)}
		if v, ok := memo[key]; ok {
			return v
		}
		memo[key] = false // guard against cycles
		if !ctx.matchStep(q.Steps[k], oid) {
			return false
		}
		if k == 0 {
			memo[key] = true
			return true
		}
		// Previous view must be a parent (child axis) or any ancestor
		// (descendant axis) satisfying step k-1.
		var ok bool
		switch q.Steps[k].Axis {
		case Child:
			for _, p := range f.parents[oid] {
				if satisfiable(k-1, p) {
					ok = true
					break
				}
			}
		case Descendant:
			seen := map[catalog.OID]bool{}
			stack := append([]catalog.OID(nil), f.parents[oid]...)
			for len(stack) > 0 && !ok {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[p] {
					continue
				}
				seen[p] = true
				if satisfiable(k-1, p) {
					ok = true
					break
				}
				stack = append(stack, f.parents[p]...)
			}
		}
		memo[key] = ok
		return ok
	}
	var out []catalog.OID
	last := len(q.Steps) - 1
	for _, oid := range f.all {
		if satisfiable(last, oid) {
			out = append(out, oid)
		}
	}
	return out
}
