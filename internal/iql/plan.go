package iql

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oidset"
	"repro/internal/tupleindex"
	"repro/internal/wildcard"
)

// Store is the interface the evaluator needs from the Resource View
// Manager: replica/index-backed lookups plus graph navigation over the
// group replica. Implementations must be safe for concurrent readers —
// the engine fans query stages out across workers.
type Store interface {
	// AllOIDs returns every managed OID in ascending order.
	AllOIDs() []catalog.OID
	// Count returns the number of managed views.
	Count() int
	// NameOf returns the replicated name component of oid.
	NameOf(oid catalog.OID) string
	// Entry returns the catalog entry of oid.
	Entry(oid catalog.OID) (catalog.Entry, error)
	// Children returns the directly related views of oid.
	Children(oid catalog.OID) []catalog.OID
	// Parents returns the views directly relating to oid.
	Parents(oid catalog.OID) []catalog.OID
	// MatchNames returns views whose name matches the wildcard pattern.
	MatchNames(pattern string) []catalog.OID
	// ContentPhrase returns views whose content contains the phrase.
	ContentPhrase(phrase string) []catalog.OID
	// ContentPhraseFreqs returns per-view phrase occurrence counts for
	// result ranking.
	ContentPhraseFreqs(phrase string) map[catalog.OID]int
	// TupleQuery returns views whose attribute satisfies (op, value).
	TupleQuery(attr string, op tupleindex.Op, value core.Value) []catalog.OID
	// Tuple returns the replicated tuple component of oid.
	Tuple(oid catalog.OID) (core.TupleComponent, bool)
	// OIDsInClass returns views whose class is the named class or a
	// specialization of it.
	OIDsInClass(class string) []catalog.OID
}

// childAppender is an optional Store fast path: append oid's children
// into a caller-owned buffer instead of allocating a fresh slice per
// call. rvm.Manager implements it; the expansion loops reuse one buffer
// per worker.
type childAppender interface {
	AppendChildren(dst []catalog.OID, oid catalog.OID) []catalog.OID
}

// Expansion selects the path-evaluation strategy. The paper's prototype
// uses forward expansion and names backward/bidirectional expansion as
// the planned fix for Q8-style queries (§7.2); both are implemented
// here, plus a cardinality-based automatic choice.
type Expansion int

// Expansion strategies.
const (
	ForwardExpansion Expansion = iota
	BackwardExpansion
	AutoExpansion
)

func (e Expansion) String() string {
	switch e {
	case ForwardExpansion:
		return "forward"
	case BackwardExpansion:
		return "backward"
	default:
		return "auto"
	}
}

// PlanInfo records the rule-based planner's decisions, for EXPLAIN-style
// output and for the evaluation harness (Figure 6 discusses Q8's
// intermediate-result blow-up). One PlanInfo is shared by all workers of
// a query: the counters are updated atomically and the notes under a
// mutex, so reads are exact once the query returns. Note order may vary
// between runs when stages execute concurrently.
type PlanInfo struct {
	mu    sync.Mutex
	Notes []string
	// Intermediates counts views touched during path expansion beyond
	// those in the final result.
	Intermediates int64
	// IndexAccesses counts index-backed candidate fetches.
	IndexAccesses int64
	// StaleSources names the degraded sources whose replicated views
	// this query may have been answered from: their last sync failed,
	// so the result reflects the last good synchronization (graceful
	// degradation rather than a failed query). Empty when every source
	// is healthy.
	StaleSources []string
}

func (p *PlanInfo) notef(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	p.mu.Lock()
	p.Notes = append(p.Notes, msg)
	p.mu.Unlock()
}

func (p *PlanInfo) addIntermediates(n int) { atomic.AddInt64(&p.Intermediates, int64(n)) }
func (p *PlanInfo) addIndexAccesses(n int) { atomic.AddInt64(&p.IndexAccesses, int64(n)) }

// String renders the plan notes one per line.
func (p *PlanInfo) String() string { return strings.Join(p.Notes, "\n") }

// indexSet is one memoized index lookup in both representations the
// evaluator needs: a bitset for per-OID membership tests in predicate
// evaluation and a sorted slice for candidate-list intersection.
type indexSet struct {
	set    *oidset.Set
	sorted []catalog.OID
}

func newIndexSet(oids []catalog.OID) *indexSet {
	if !sort.SliceIsSorted(oids, func(i, j int) bool { return oids[i] < oids[j] }) {
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	}
	return &indexSet{set: oidset.FromSlice(oids), sorted: oids}
}

// evalCtx carries per-query state: memoized index lookups (shared by all
// workers of the query, guarded by memoMu) and the parallelism the
// engine was configured with.
type evalCtx struct {
	store Store
	plan  *PlanInfo
	// par is the worker count data-parallel stages fan out to (>= 1).
	par int
	// children appends oid's directly related views to dst, using the
	// store's append fast path when available.
	children func(dst []catalog.OID, oid catalog.OID) []catalog.OID

	memoMu sync.RWMutex
	// phraseSets memoizes content-index phrase results.
	phraseSets map[string]*indexSet
	// classSets memoizes specialization-aware class membership.
	classSets map[string]*indexSet
}

func newEvalCtx(store Store, plan *PlanInfo, par int) *evalCtx {
	if par < 1 {
		par = 1
	}
	c := &evalCtx{
		store:      store,
		plan:       plan,
		par:        par,
		phraseSets: make(map[string]*indexSet),
		classSets:  make(map[string]*indexSet),
	}
	if ap, ok := store.(childAppender); ok {
		c.children = ap.AppendChildren
	} else {
		c.children = func(dst []catalog.OID, oid catalog.OID) []catalog.OID {
			return append(dst, store.Children(oid)...)
		}
	}
	return c
}

func (c *evalCtx) phraseSet(phrase string) *indexSet {
	key := strings.ToLower(phrase)
	c.memoMu.RLock()
	s, ok := c.phraseSets[key]
	c.memoMu.RUnlock()
	if ok {
		return s
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if s, ok := c.phraseSets[key]; ok {
		return s
	}
	c.plan.addIndexAccesses(1)
	s = newIndexSet(c.store.ContentPhrase(phrase))
	c.phraseSets[key] = s
	return s
}

func (c *evalCtx) classSet(class string) *indexSet {
	c.memoMu.RLock()
	s, ok := c.classSets[class]
	c.memoMu.RUnlock()
	if ok {
		return s
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if s, ok := c.classSets[class]; ok {
		return s
	}
	c.plan.addIndexAccesses(1)
	s = newIndexSet(c.store.OIDsInClass(class))
	c.classSets[class] = s
	return s
}

// evalExpr evaluates a predicate for one view.
func (c *evalCtx) evalExpr(e Expr, oid catalog.OID) bool {
	switch x := e.(type) {
	case *AndExpr:
		return c.evalExpr(x.L, oid) && c.evalExpr(x.R, oid)
	case *OrExpr:
		return c.evalExpr(x.L, oid) || c.evalExpr(x.R, oid)
	case *NotExpr:
		return !c.evalExpr(x.E, oid)
	case *PhraseExpr:
		return c.phraseSet(x.Phrase).set.Contains(oid)
	case *ClassExpr:
		return c.classSet(x.Class).set.Contains(oid)
	case *HasExpr:
		return c.hasBranch(x.Steps, oid)
	case *CmpExpr:
		// The pseudo-attribute "name" compares against the η component
		// (with wildcard semantics for = and !=), extending search to
		// components beyond χ and τ.
		if x.Attr == "name" && x.Value.Kind == core.DomainString {
			matched := wildcard.Match(x.Value.Str, c.store.NameOf(oid))
			switch x.Op {
			case OpEq:
				return matched
			case OpNe:
				return !matched
			default:
				return false
			}
		}
		tc, ok := c.store.Tuple(oid)
		if !ok {
			return false
		}
		v, ok := tc.Get(x.Attr)
		if !ok {
			return false
		}
		cmp, err := core.Compare(v, x.Value)
		if err != nil {
			return false
		}
		switch x.Op {
		case OpEq:
			return cmp == 0
		case OpNe:
			return cmp != 0
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		case OpGe:
			return cmp >= 0
		}
	}
	return false
}

// hasBranchBudget bounds the views touched by one has() evaluation.
const hasBranchBudget = 1 << 16

// hasBranch evaluates an existence branch relative to one view: it
// follows the steps from oid and reports whether any view matches the
// full branch path. It shares the frontier-parallel expansion helpers
// with forward path evaluation; an exhausted branch budget reports
// non-existence rather than failing the query.
func (c *evalCtx) hasBranch(steps []Step, oid catalog.OID) bool {
	cur := []catalog.OID{oid}
	bud := newBudget(hasBranchBudget)
	for _, s := range steps {
		var matched *oidset.Set
		var err error
		switch s.Axis {
		case Child:
			matched, _, err = c.expandChild(s, cur, bud, nil)
		case Descendant:
			matched, _, err = c.expandDescendant(s, cur, bud, nil)
		}
		if err != nil || matched == nil || matched.Len() == 0 {
			return false
		}
		cur = matched.Slice()
	}
	return true
}

// matchStep reports whether a view satisfies a step's name pattern and
// predicate.
func (c *evalCtx) matchStep(s Step, oid catalog.OID) bool {
	if !s.AnyName() && !WildcardMatch(s.Pattern, c.store.NameOf(oid)) {
		return false
	}
	if s.Pred != nil && !c.evalExpr(s.Pred, oid) {
		return false
	}
	return true
}

// resolveStep returns all views in the dataspace matching a step's
// pattern and predicate, using indexes where the rule-based planner
// finds them applicable and falling back to a scan otherwise. The final
// residual filter shards across workers when the candidate list is
// large.
func (c *evalCtx) resolveStep(s Step, sp *obs.Span) []catalog.OID {
	var candidates []catalog.OID
	constrained := false

	intersect := func(oids []catalog.OID, why string) {
		c.plan.notef("  index: %s → %d candidates", why, len(oids))
		if is := startSpan(sp, "index %s", why); is != nil {
			is.SetInt("candidates", int64(len(oids)))
			is.Finish()
		}
		if !constrained {
			candidates = oids
			constrained = true
			return
		}
		candidates = intersectSorted(candidates, oids)
	}

	if !s.AnyName() {
		c.plan.addIndexAccesses(1)
		oids := c.store.MatchNames(s.Pattern)
		intersect(oids, fmt.Sprintf("name replica match %q", s.Pattern))
	}
	// Pull index-supported conjuncts out of the predicate. The full
	// predicate is still applied below, so over-approximation is safe.
	for _, conj := range conjuncts(s.Pred) {
		switch x := conj.(type) {
		case *PhraseExpr:
			set := c.phraseSet(x.Phrase)
			intersect(set.sorted, fmt.Sprintf("content index phrase %q", x.Phrase))
		case *ClassExpr:
			set := c.classSet(x.Class)
			intersect(set.sorted, fmt.Sprintf("class lookup %q", x.Class))
		case *CmpExpr:
			if x.Attr == "name" && x.Op == OpEq && x.Value.Kind == core.DomainString {
				c.plan.addIndexAccesses(1)
				oids := c.store.MatchNames(x.Value.Str)
				intersect(oids, fmt.Sprintf("name replica match %q (name predicate)", x.Value.Str))
				continue
			}
			if x.Attr == "name" {
				continue // inequality on names: final filter only
			}
			if op, ok := tupleOp(x.Op); ok {
				c.plan.addIndexAccesses(1)
				oids := c.store.TupleQuery(x.Attr, op, x.Value)
				intersect(oids, fmt.Sprintf("tuple index %s %s %s", x.Attr, x.Op, x.ValueText))
			}
		}
	}
	if !constrained {
		candidates = c.store.AllOIDs()
		c.plan.notef("  scan: no applicable index, %d views", len(candidates))
		sp.Set("access", "full scan")
	}
	// Final exact filter (pattern + full predicate).
	rf := startSpan(sp, "residual filter")
	rf.SetInt("candidates", int64(len(candidates)))
	out := c.filterStep(s, candidates, rf)
	rf.SetInt("matches", int64(len(out)))
	rf.Finish()
	return out
}

// conjuncts flattens the top-level AND tree of an expression.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*AndExpr); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Expr{e}
}

func tupleOp(op CmpOp) (tupleindex.Op, bool) {
	switch op {
	case OpEq:
		return tupleindex.EQ, true
	case OpNe:
		return tupleindex.NE, true
	case OpLt:
		return tupleindex.LT, true
	case OpLe:
		return tupleindex.LE, true
	case OpGt:
		return tupleindex.GT, true
	case OpGe:
		return tupleindex.GE, true
	default:
		return 0, false
	}
}

func intersectSorted(a, b []catalog.OID) []catalog.OID {
	var out []catalog.OID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// WildcardMatch reports whether name matches pattern; see
// internal/wildcard for the semantics.
func WildcardMatch(pattern, name string) bool {
	return wildcard.Match(pattern, name)
}
