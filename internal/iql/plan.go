package iql

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oidset"
	"repro/internal/tupleindex"
	"repro/internal/wildcard"
)

// Store is the interface the evaluator needs from the Resource View
// Manager: replica/index-backed lookups plus graph navigation over the
// group replica. Implementations must be safe for concurrent readers —
// the engine fans query stages out across workers.
type Store interface {
	// AllOIDs returns every managed OID in ascending order.
	AllOIDs() []catalog.OID
	// Count returns the number of managed views.
	Count() int
	// NameOf returns the replicated name component of oid.
	NameOf(oid catalog.OID) string
	// Entry returns the catalog entry of oid.
	Entry(oid catalog.OID) (catalog.Entry, error)
	// Children returns the directly related views of oid.
	Children(oid catalog.OID) []catalog.OID
	// Parents returns the views directly relating to oid.
	Parents(oid catalog.OID) []catalog.OID
	// MatchNames returns views whose name matches the wildcard pattern.
	MatchNames(pattern string) []catalog.OID
	// ContentPhrase returns views whose content contains the phrase.
	ContentPhrase(phrase string) []catalog.OID
	// ContentPhraseFreqs returns per-view phrase occurrence counts for
	// result ranking.
	ContentPhraseFreqs(phrase string) map[catalog.OID]int
	// TupleQuery returns views whose attribute satisfies (op, value).
	// The result must be exact — the set of views for which Tuple's
	// component yields a satisfying value under Get — so the planner
	// may answer a pushed-down comparison from the index alone
	// (schemas therefore must not repeat an attribute name).
	TupleQuery(attr string, op tupleindex.Op, value core.Value) []catalog.OID
	// Tuple returns the replicated tuple component of oid.
	Tuple(oid catalog.OID) (core.TupleComponent, bool)
	// OIDsInClass returns views whose class is the named class or a
	// specialization of it.
	OIDsInClass(class string) []catalog.OID
}

// childAppender is an optional Store fast path: append oid's children
// into a caller-owned buffer instead of allocating a fresh slice per
// call. rvm.Manager implements it; the expansion loops reuse one buffer
// per worker.
type childAppender interface {
	AppendChildren(dst []catalog.OID, oid catalog.OID) []catalog.OID
}

// Expansion selects the path-evaluation strategy. The paper's prototype
// uses forward expansion and names backward/bidirectional expansion as
// the planned fix for Q8-style queries (§7.2); both are implemented
// here, plus a cardinality-based automatic choice.
type Expansion int

// Expansion strategies.
const (
	ForwardExpansion Expansion = iota
	BackwardExpansion
	AutoExpansion
)

func (e Expansion) String() string {
	switch e {
	case ForwardExpansion:
		return "forward"
	case BackwardExpansion:
		return "backward"
	default:
		return "auto"
	}
}

// PlanInfo records the rule-based planner's decisions, for EXPLAIN-style
// output and for the evaluation harness (Figure 6 discusses Q8's
// intermediate-result blow-up). One PlanInfo is shared by all workers of
// a query: the counters are updated atomically and the notes under a
// mutex, so reads are exact once the query returns. Note order may vary
// between runs when stages execute concurrently.
type PlanInfo struct {
	mu    sync.Mutex
	Notes []string
	// Strategy is the physical strategy of the top-level query node:
	// the chosen expansion direction for paths ("forward", "backward",
	// "single step"), or the operator name ("predicate", "union",
	// "join").
	Strategy string
	// Intermediates counts views touched during path expansion beyond
	// those in the final result.
	Intermediates int64
	// IndexAccesses counts index-backed candidate fetches.
	IndexAccesses int64
	// EstimatedRows is the planner's pre-execution result-size bound
	// (statistics only; -1 when the planner made no estimate).
	EstimatedRows int64
	// ParallelStages / SerialStages count the planner's per-stage
	// serial-vs-parallel decisions during this query.
	ParallelStages int64
	SerialStages   int64
	// Pushdowns counts predicate conjuncts answered by an index scan
	// ahead of path expansion.
	Pushdowns int64
	// ResidualSkips counts step resolutions whose residual filter the
	// adaptive planner elided because the index intersection already
	// covered the step exactly.
	ResidualSkips int64
	// RowsScanned counts candidate views examined by residual filters,
	// including full catalog scans (the per-query analogue of a row-scan
	// counter).
	RowsScanned int64
	// PostingsRead counts index postings materialized from the name,
	// content, tuple and class indexes (each memoized lookup counted
	// once, at materialization).
	PostingsRead int64
	// ResidualFilters counts residual-filter stages that actually ran
	// (resolved steps minus ResidualSkips).
	ResidualFilters int64
	// PeakFrontier is the largest expansion frontier any stage of this
	// query carried — the memory high-water mark of BFS expansion.
	PeakFrontier int64
	// StaleSources names the degraded sources whose replicated views
	// this query may have been answered from: their last sync failed,
	// so the result reflects the last good synchronization (graceful
	// degradation rather than a failed query). Empty when every source
	// is healthy.
	StaleSources []string
}

func (p *PlanInfo) notef(format string, args ...any) {
	p.note(fmt.Sprintf(format, args...))
}

// note appends a preformatted message. The planner notes emitted on
// every adaptive query build their strings with strconv appends and
// call this directly: fmt.Sprintf there is measurable overhead on
// microsecond-scale queries.
func (p *PlanInfo) note(msg string) {
	p.mu.Lock()
	p.Notes = append(p.Notes, msg)
	p.mu.Unlock()
}

func (p *PlanInfo) setStrategy(s string) {
	p.mu.Lock()
	p.Strategy = s
	p.mu.Unlock()
}

func (p *PlanInfo) addIntermediates(n int)  { atomic.AddInt64(&p.Intermediates, int64(n)) }
func (p *PlanInfo) addIndexAccesses(n int)  { atomic.AddInt64(&p.IndexAccesses, int64(n)) }
func (p *PlanInfo) addParallelStages(n int) { atomic.AddInt64(&p.ParallelStages, int64(n)) }
func (p *PlanInfo) addSerialStages(n int)   { atomic.AddInt64(&p.SerialStages, int64(n)) }
func (p *PlanInfo) addPushdowns(n int)      { atomic.AddInt64(&p.Pushdowns, int64(n)) }
func (p *PlanInfo) addResidualSkips(n int)  { atomic.AddInt64(&p.ResidualSkips, int64(n)) }
func (p *PlanInfo) addRowsScanned(n int)    { atomic.AddInt64(&p.RowsScanned, int64(n)) }
func (p *PlanInfo) addPostingsRead(n int)   { atomic.AddInt64(&p.PostingsRead, int64(n)) }
func (p *PlanInfo) addResidualFilters(n int) {
	atomic.AddInt64(&p.ResidualFilters, int64(n))
}

// maxFrontier lifts PeakFrontier to n if larger (atomic max; expansion
// stages may run concurrently).
func (p *PlanInfo) maxFrontier(n int) {
	v := int64(n)
	for {
		cur := atomic.LoadInt64(&p.PeakFrontier)
		if v <= cur || atomic.CompareAndSwapInt64(&p.PeakFrontier, cur, v) {
			return
		}
	}
}

// String renders the plan notes one per line.
func (p *PlanInfo) String() string { return strings.Join(p.Notes, "\n") }

// indexSet is one memoized index lookup in both representations the
// evaluator needs: a bitset for per-OID membership tests in predicate
// evaluation and a sorted slice for candidate-list intersection.
type indexSet struct {
	set    *oidset.Set
	sorted []catalog.OID
}

func newIndexSet(oids []catalog.OID) *indexSet {
	if !sort.SliceIsSorted(oids, func(i, j int) bool { return oids[i] < oids[j] }) {
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	}
	return &indexSet{set: oidset.FromSlice(oids), sorted: oids}
}

// evalCtx carries per-query state: memoized index lookups (shared by all
// workers of the query, guarded by memoMu) and the parallelism the
// engine was configured with.
type evalCtx struct {
	store Store
	plan  *PlanInfo
	// par is the worker count data-parallel stages fan out to (>= 1).
	par int
	// planner selects rule-based vs cost-based physical decisions.
	planner PlannerMode
	// effPar is the adaptive planner's worker ceiling: par clamped by
	// the schedulable CPUs (>= 1; ignored in rule mode).
	effPar int
	// stats is the store's statistics surface, nil when the store does
	// not implement StatsProvider.
	stats StatsProvider
	// children appends oid's directly related views to dst, using the
	// store's append fast path when available.
	children func(dst []catalog.OID, oid catalog.OID) []catalog.OID

	memoMu sync.RWMutex
	// phraseSets memoizes content-index phrase results.
	phraseSets map[string]*indexSet
	// classSets memoizes specialization-aware class membership.
	classSets map[string]*indexSet
	// nameSets memoizes name-replica pattern matches.
	nameSets map[string]*indexSet
	// tupleSets memoizes tuple-index range results, keyed attr|op|text.
	tupleSets map[string]*indexSet
	// estimates memoizes estimateQuery per AST node: the plan header,
	// union ordering, join build-side choice and path direction choice
	// all ask for overlapping estimates, and on microsecond-scale
	// queries recomputing them is measurable planner overhead.
	estimates map[Query]int
	// shared is the engine's cross-execution plan cache (nil when the
	// store has no dataspace version to invalidate on); sharedVersion
	// is the dataspace version captured when this execution started.
	shared        *planCache
	sharedVersion uint64
}

func newEvalCtx(store Store, plan *PlanInfo, par int) *evalCtx {
	if par < 1 {
		par = 1
	}
	c := &evalCtx{
		store:      store,
		plan:       plan,
		par:        par,
		effPar:     1,
		phraseSets: make(map[string]*indexSet),
		classSets:  make(map[string]*indexSet),
		nameSets:   make(map[string]*indexSet),
		tupleSets:  make(map[string]*indexSet),
		estimates:  make(map[Query]int),
	}
	if ap, ok := store.(childAppender); ok {
		c.children = ap.AppendChildren
	} else {
		c.children = func(dst []catalog.OID, oid catalog.OID) []catalog.OID {
			return append(dst, store.Children(oid)...)
		}
	}
	return c
}

func (c *evalCtx) phraseSet(phrase string) *indexSet {
	key := strings.ToLower(phrase)
	c.memoMu.RLock()
	s, ok := c.phraseSets[key]
	c.memoMu.RUnlock()
	if ok {
		return s
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if s, ok := c.phraseSets[key]; ok {
		return s
	}
	c.plan.addIndexAccesses(1)
	s = newIndexSet(c.store.ContentPhrase(phrase))
	c.plan.addPostingsRead(len(s.sorted))
	c.phraseSets[key] = s
	return s
}

func (c *evalCtx) classSet(class string) *indexSet {
	c.memoMu.RLock()
	s, ok := c.classSets[class]
	c.memoMu.RUnlock()
	if ok {
		return s
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if s, ok := c.classSets[class]; ok {
		return s
	}
	c.plan.addIndexAccesses(1)
	s = newIndexSet(c.store.OIDsInClass(class))
	c.plan.addPostingsRead(len(s.sorted))
	c.classSets[class] = s
	return s
}

func (c *evalCtx) nameSet(pattern string) *indexSet {
	key := strings.ToLower(pattern)
	c.memoMu.RLock()
	s, ok := c.nameSets[key]
	c.memoMu.RUnlock()
	if ok {
		return s
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if s, ok := c.nameSets[key]; ok {
		return s
	}
	c.plan.addIndexAccesses(1)
	s = newIndexSet(c.store.MatchNames(pattern))
	c.plan.addPostingsRead(len(s.sorted))
	c.nameSets[key] = s
	return s
}

func (c *evalCtx) tupleSet(attr string, cmp CmpOp, op tupleindex.Op, value core.Value, text string) *indexSet {
	key := attr + "\x00" + cmp.String() + "\x00" + text
	c.memoMu.RLock()
	s, ok := c.tupleSets[key]
	c.memoMu.RUnlock()
	if ok {
		return s
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if s, ok := c.tupleSets[key]; ok {
		return s
	}
	c.plan.addIndexAccesses(1)
	s = newIndexSet(c.store.TupleQuery(attr, op, value))
	c.plan.addPostingsRead(len(s.sorted))
	c.tupleSets[key] = s
	return s
}

// evalExpr evaluates a predicate for one view.
func (c *evalCtx) evalExpr(e Expr, oid catalog.OID) bool {
	switch x := e.(type) {
	case *AndExpr:
		return c.evalExpr(x.L, oid) && c.evalExpr(x.R, oid)
	case *OrExpr:
		return c.evalExpr(x.L, oid) || c.evalExpr(x.R, oid)
	case *NotExpr:
		return !c.evalExpr(x.E, oid)
	case *PhraseExpr:
		return c.phraseSet(x.Phrase).set.Contains(oid)
	case *ClassExpr:
		return c.classSet(x.Class).set.Contains(oid)
	case *HasExpr:
		return c.hasBranch(x.Steps, oid)
	case *CmpExpr:
		// The pseudo-attribute "name" compares against the η component
		// (with wildcard semantics for = and !=), extending search to
		// components beyond χ and τ.
		if x.Attr == "name" && x.Value.Kind == core.DomainString {
			matched := wildcard.Match(x.Value.Str, c.store.NameOf(oid))
			switch x.Op {
			case OpEq:
				return matched
			case OpNe:
				return !matched
			default:
				return false
			}
		}
		tc, ok := c.store.Tuple(oid)
		if !ok {
			return false
		}
		v, ok := tc.Get(x.Attr)
		if !ok {
			return false
		}
		cmp, err := core.Compare(v, x.Value)
		if err != nil {
			return false
		}
		switch x.Op {
		case OpEq:
			return cmp == 0
		case OpNe:
			return cmp != 0
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		case OpGe:
			return cmp >= 0
		}
	}
	return false
}

// hasBranchBudget bounds the views touched by one has() evaluation.
const hasBranchBudget = 1 << 16

// hasBranch evaluates an existence branch relative to one view: it
// follows the steps from oid and reports whether any view matches the
// full branch path. It shares the frontier-parallel expansion helpers
// with forward path evaluation; an exhausted branch budget reports
// non-existence rather than failing the query.
func (c *evalCtx) hasBranch(steps []Step, oid catalog.OID) bool {
	cur := []catalog.OID{oid}
	bud := newBudget(hasBranchBudget)
	for _, s := range steps {
		var matched *oidset.Set
		var err error
		switch s.Axis {
		case Child:
			matched, _, err = c.expandChild(s, cur, bud, nil)
		case Descendant:
			matched, _, err = c.expandDescendant(s, cur, bud, nil)
		}
		if err != nil || matched == nil || matched.Len() == 0 {
			return false
		}
		cur = matched.Slice()
	}
	return true
}

// matchStep reports whether a view satisfies a step's name pattern and
// predicate.
func (c *evalCtx) matchStep(s Step, oid catalog.OID) bool {
	if !s.AnyName() && !WildcardMatch(s.Pattern, c.store.NameOf(oid)) {
		return false
	}
	if s.Pred != nil && !c.evalExpr(s.Pred, oid) {
		return false
	}
	return true
}

// resolveStep returns all views in the dataspace matching a step's
// pattern and predicate, using indexes where the rule-based planner
// finds them applicable and falling back to a scan otherwise. The final
// residual filter shards across workers when the candidate list is
// large.
func (c *evalCtx) resolveStep(s Step, sp *obs.Span) []catalog.OID {
	var candidates []catalog.OID
	constrained := false
	// covered tracks whether the intersected index sets are exactly the
	// step's match set: every pushed conjunct is an exact index answer
	// (phrase/class sets, name-replica matches and tuple-column spans
	// all are), and no conjunct stayed behind. The name pattern is
	// always covered: AnyName needs no check, and any other pattern is
	// pushed through the name replica below.
	covered := true

	intersect := func(oids []catalog.OID, why string) {
		c.plan.addPushdowns(1)
		c.plan.notef("  index: %s → %d candidates", why, len(oids))
		if is := startSpan(sp, "index %s", why); is != nil {
			is.SetInt("candidates", int64(len(oids)))
			is.Finish()
		}
		if !constrained {
			candidates = oids
			constrained = true
			return
		}
		candidates = intersectSorted(candidates, oids)
	}

	if !s.AnyName() {
		set := c.nameSet(s.Pattern)
		intersect(set.sorted, fmt.Sprintf("name replica match %q", s.Pattern))
	}
	// Pull index-supported conjuncts out of the predicate. The full
	// predicate is still applied below, so over-approximation is safe.
	for _, conj := range conjuncts(s.Pred) {
		switch x := conj.(type) {
		case *PhraseExpr:
			set := c.phraseSet(x.Phrase)
			intersect(set.sorted, fmt.Sprintf("content index phrase %q", x.Phrase))
		case *ClassExpr:
			set := c.classSet(x.Class)
			intersect(set.sorted, fmt.Sprintf("class lookup %q", x.Class))
		case *CmpExpr:
			if x.Attr == "name" && x.Op == OpEq && x.Value.Kind == core.DomainString {
				set := c.nameSet(x.Value.Str)
				intersect(set.sorted, fmt.Sprintf("name replica match %q (name predicate)", x.Value.Str))
				continue
			}
			if x.Attr == "name" {
				covered = false
				continue // inequality on names: final filter only
			}
			if op, ok := tupleOp(x.Op); ok {
				set := c.tupleSet(x.Attr, x.Op, op, x.Value, x.ValueText)
				intersect(set.sorted, fmt.Sprintf("tuple index %s %s %s", x.Attr, x.Op, x.ValueText))
			} else {
				covered = false
			}
		default:
			// OR / NOT / has() conjuncts have no exact index answer.
			covered = false
		}
	}
	if !constrained {
		candidates = c.store.AllOIDs()
		c.plan.notef("  scan: no applicable index, %d views", len(candidates))
		sp.Set("access", "full scan")
		covered = false
	}
	if covered && c.planner == PlannerAdaptive {
		// Every constraint of the step was answered exactly by the index
		// intersection: the residual filter would re-check what the
		// indexes already guarantee, so the adaptive planner elides it.
		c.plan.addResidualSkips(1)
		c.plan.notef("  planner: residual filter elided (step fully index-covered)")
		sp.Set("residual", "elided (index-covered)")
		return candidates
	}
	// Final exact filter (pattern + full predicate).
	c.plan.addResidualFilters(1)
	c.plan.addRowsScanned(len(candidates))
	rf := startSpan(sp, "residual filter")
	rf.SetInt("candidates", int64(len(candidates)))
	out := c.filterStep(s, candidates, rf)
	rf.SetInt("matches", int64(len(out)))
	rf.Finish()
	return out
}

// conjuncts flattens the top-level AND tree of an expression.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*AndExpr); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Expr{e}
}

func tupleOp(op CmpOp) (tupleindex.Op, bool) {
	switch op {
	case OpEq:
		return tupleindex.EQ, true
	case OpNe:
		return tupleindex.NE, true
	case OpLt:
		return tupleindex.LT, true
	case OpLe:
		return tupleindex.LE, true
	case OpGt:
		return tupleindex.GT, true
	case OpGe:
		return tupleindex.GE, true
	default:
		return 0, false
	}
}

func intersectSorted(a, b []catalog.OID) []catalog.OID {
	var out []catalog.OID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// WildcardMatch reports whether name matches pattern; see
// internal/wildcard for the semantics.
func WildcardMatch(pattern, name string) bool {
	return wildcard.Match(pattern, name)
}
