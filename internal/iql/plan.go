package iql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/tupleindex"
	"repro/internal/wildcard"
)

// Store is the interface the evaluator needs from the Resource View
// Manager: replica/index-backed lookups plus graph navigation over the
// group replica.
type Store interface {
	// AllOIDs returns every managed OID in ascending order.
	AllOIDs() []catalog.OID
	// Count returns the number of managed views.
	Count() int
	// NameOf returns the replicated name component of oid.
	NameOf(oid catalog.OID) string
	// Entry returns the catalog entry of oid.
	Entry(oid catalog.OID) (catalog.Entry, error)
	// Children returns the directly related views of oid.
	Children(oid catalog.OID) []catalog.OID
	// Parents returns the views directly relating to oid.
	Parents(oid catalog.OID) []catalog.OID
	// MatchNames returns views whose name matches the wildcard pattern.
	MatchNames(pattern string) []catalog.OID
	// ContentPhrase returns views whose content contains the phrase.
	ContentPhrase(phrase string) []catalog.OID
	// ContentPhraseFreqs returns per-view phrase occurrence counts for
	// result ranking.
	ContentPhraseFreqs(phrase string) map[catalog.OID]int
	// TupleQuery returns views whose attribute satisfies (op, value).
	TupleQuery(attr string, op tupleindex.Op, value core.Value) []catalog.OID
	// Tuple returns the replicated tuple component of oid.
	Tuple(oid catalog.OID) (core.TupleComponent, bool)
	// OIDsInClass returns views whose class is the named class or a
	// specialization of it.
	OIDsInClass(class string) []catalog.OID
}

// Expansion selects the path-evaluation strategy. The paper's prototype
// uses forward expansion and names backward/bidirectional expansion as
// the planned fix for Q8-style queries (§7.2); both are implemented
// here, plus a cardinality-based automatic choice.
type Expansion int

// Expansion strategies.
const (
	ForwardExpansion Expansion = iota
	BackwardExpansion
	AutoExpansion
)

func (e Expansion) String() string {
	switch e {
	case ForwardExpansion:
		return "forward"
	case BackwardExpansion:
		return "backward"
	default:
		return "auto"
	}
}

// PlanInfo records the rule-based planner's decisions, for EXPLAIN-style
// output and for the evaluation harness (Figure 6 discusses Q8's
// intermediate-result blow-up).
type PlanInfo struct {
	Notes []string
	// Intermediates counts views touched during path expansion beyond
	// those in the final result.
	Intermediates int
	// IndexAccesses counts index-backed candidate fetches.
	IndexAccesses int
}

func (p *PlanInfo) notef(format string, args ...any) {
	p.Notes = append(p.Notes, fmt.Sprintf(format, args...))
}

// String renders the plan notes one per line.
func (p *PlanInfo) String() string { return strings.Join(p.Notes, "\n") }

// evalCtx carries per-query memoized index lookups.
type evalCtx struct {
	store Store
	plan  *PlanInfo
	// phraseSets memoizes content-index phrase results.
	phraseSets map[string]map[catalog.OID]bool
	// classSets memoizes specialization-aware class membership.
	classSets map[string]map[catalog.OID]bool
}

func newEvalCtx(store Store, plan *PlanInfo) *evalCtx {
	return &evalCtx{
		store:      store,
		plan:       plan,
		phraseSets: make(map[string]map[catalog.OID]bool),
		classSets:  make(map[string]map[catalog.OID]bool),
	}
}

func (c *evalCtx) phraseSet(phrase string) map[catalog.OID]bool {
	key := strings.ToLower(phrase)
	if s, ok := c.phraseSets[key]; ok {
		return s
	}
	c.plan.IndexAccesses++
	oids := c.store.ContentPhrase(phrase)
	s := make(map[catalog.OID]bool, len(oids))
	for _, o := range oids {
		s[o] = true
	}
	c.phraseSets[key] = s
	return s
}

func (c *evalCtx) classSet(class string) map[catalog.OID]bool {
	if s, ok := c.classSets[class]; ok {
		return s
	}
	c.plan.IndexAccesses++
	oids := c.store.OIDsInClass(class)
	s := make(map[catalog.OID]bool, len(oids))
	for _, o := range oids {
		s[o] = true
	}
	c.classSets[class] = s
	return s
}

// evalExpr evaluates a predicate for one view.
func (c *evalCtx) evalExpr(e Expr, oid catalog.OID) bool {
	switch x := e.(type) {
	case *AndExpr:
		return c.evalExpr(x.L, oid) && c.evalExpr(x.R, oid)
	case *OrExpr:
		return c.evalExpr(x.L, oid) || c.evalExpr(x.R, oid)
	case *NotExpr:
		return !c.evalExpr(x.E, oid)
	case *PhraseExpr:
		return c.phraseSet(x.Phrase)[oid]
	case *ClassExpr:
		return c.classSet(x.Class)[oid]
	case *HasExpr:
		return c.hasBranch(x.Steps, oid)
	case *CmpExpr:
		// The pseudo-attribute "name" compares against the η component
		// (with wildcard semantics for = and !=), extending search to
		// components beyond χ and τ.
		if x.Attr == "name" && x.Value.Kind == core.DomainString {
			matched := wildcard.Match(x.Value.Str, c.store.NameOf(oid))
			switch x.Op {
			case OpEq:
				return matched
			case OpNe:
				return !matched
			default:
				return false
			}
		}
		tc, ok := c.store.Tuple(oid)
		if !ok {
			return false
		}
		v, ok := tc.Get(x.Attr)
		if !ok {
			return false
		}
		cmp, err := core.Compare(v, x.Value)
		if err != nil {
			return false
		}
		switch x.Op {
		case OpEq:
			return cmp == 0
		case OpNe:
			return cmp != 0
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		case OpGe:
			return cmp >= 0
		}
	}
	return false
}

// hasBranchBudget bounds the views touched by one has() evaluation.
const hasBranchBudget = 1 << 16

// hasBranch evaluates an existence branch relative to one view: it
// follows the steps from oid and reports whether any view matches the
// full branch path.
func (c *evalCtx) hasBranch(steps []Step, oid catalog.OID) bool {
	cur := []catalog.OID{oid}
	budget := hasBranchBudget
	for _, s := range steps {
		matched := make(map[catalog.OID]bool)
		switch s.Axis {
		case Child:
			for _, v := range cur {
				for _, child := range c.store.Children(v) {
					if budget--; budget <= 0 {
						return false
					}
					if c.matchStep(s, child) {
						matched[child] = true
					}
				}
			}
		case Descendant:
			visited := make(map[catalog.OID]bool)
			frontier := cur
			for len(frontier) > 0 {
				var next []catalog.OID
				for _, v := range frontier {
					for _, child := range c.store.Children(v) {
						if visited[child] {
							continue
						}
						visited[child] = true
						if budget--; budget <= 0 {
							return false
						}
						if c.matchStep(s, child) {
							matched[child] = true
						}
						next = append(next, child)
					}
				}
				frontier = next
			}
		}
		if len(matched) == 0 {
			return false
		}
		cur = setToSorted(matched)
	}
	return true
}

// matchStep reports whether a view satisfies a step's name pattern and
// predicate.
func (c *evalCtx) matchStep(s Step, oid catalog.OID) bool {
	if !s.AnyName() && !WildcardMatch(s.Pattern, c.store.NameOf(oid)) {
		return false
	}
	if s.Pred != nil && !c.evalExpr(s.Pred, oid) {
		return false
	}
	return true
}

// resolveStep returns all views in the dataspace matching a step's
// pattern and predicate, using indexes where the rule-based planner
// finds them applicable and falling back to a scan otherwise.
func (c *evalCtx) resolveStep(s Step) []catalog.OID {
	var candidates []catalog.OID
	constrained := false

	intersect := func(oids []catalog.OID, why string) {
		c.plan.notef("  index: %s → %d candidates", why, len(oids))
		if !constrained {
			candidates = oids
			constrained = true
			return
		}
		candidates = intersectSorted(candidates, oids)
	}

	if !s.AnyName() {
		c.plan.IndexAccesses++
		oids := c.store.MatchNames(s.Pattern)
		intersect(oids, fmt.Sprintf("name replica match %q", s.Pattern))
	}
	// Pull index-supported conjuncts out of the predicate. The full
	// predicate is still applied below, so over-approximation is safe.
	for _, conj := range conjuncts(s.Pred) {
		switch x := conj.(type) {
		case *PhraseExpr:
			set := c.phraseSet(x.Phrase)
			intersect(setToSorted(set), fmt.Sprintf("content index phrase %q", x.Phrase))
		case *ClassExpr:
			set := c.classSet(x.Class)
			intersect(setToSorted(set), fmt.Sprintf("class lookup %q", x.Class))
		case *CmpExpr:
			if x.Attr == "name" && x.Op == OpEq && x.Value.Kind == core.DomainString {
				c.plan.IndexAccesses++
				oids := c.store.MatchNames(x.Value.Str)
				intersect(oids, fmt.Sprintf("name replica match %q (name predicate)", x.Value.Str))
				continue
			}
			if x.Attr == "name" {
				continue // inequality on names: final filter only
			}
			if op, ok := tupleOp(x.Op); ok {
				c.plan.IndexAccesses++
				oids := c.store.TupleQuery(x.Attr, op, x.Value)
				intersect(oids, fmt.Sprintf("tuple index %s %s %s", x.Attr, x.Op, x.ValueText))
			}
		}
	}
	if !constrained {
		candidates = c.store.AllOIDs()
		c.plan.notef("  scan: no applicable index, %d views", len(candidates))
	}
	// Final exact filter (pattern + full predicate).
	out := candidates[:0:0]
	for _, oid := range candidates {
		if c.matchStep(s, oid) {
			out = append(out, oid)
		}
	}
	return out
}

// conjuncts flattens the top-level AND tree of an expression.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*AndExpr); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Expr{e}
}

func tupleOp(op CmpOp) (tupleindex.Op, bool) {
	switch op {
	case OpEq:
		return tupleindex.EQ, true
	case OpNe:
		return tupleindex.NE, true
	case OpLt:
		return tupleindex.LT, true
	case OpLe:
		return tupleindex.LE, true
	case OpGt:
		return tupleindex.GT, true
	case OpGe:
		return tupleindex.GE, true
	default:
		return 0, false
	}
}

func intersectSorted(a, b []catalog.OID) []catalog.OID {
	var out []catalog.OID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func setToSorted(s map[catalog.OID]bool) []catalog.OID {
	out := make([]catalog.OID, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WildcardMatch reports whether name matches pattern; see
// internal/wildcard for the semantics.
func WildcardMatch(pattern, name string) bool {
	return wildcard.Match(pattern, name)
}
