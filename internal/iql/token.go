// Package iql implements the iMeMex Query Language of §5.1 of the iDM
// paper: a keyword-search language in the spirit of IR engines, extended
// with path expressions over the resource view graph, predicates on
// tuple-component attributes and resource view classes, wildcards in
// name steps, and union and join operators. The package provides the
// lexer, parser, rule-based planner and evaluator; evaluation runs
// against any Store (the Resource View Manager implements it).
package iql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	// TokWord is a bare word: an identifier, keyword, number or name
	// pattern (may contain '*' and '?'). Interpretation is contextual.
	TokWord
	// TokString is a double-quoted string (keyword phrase or literal).
	TokString
	// TokDate is an @-prefixed date literal, e.g. @12.06.2005.
	TokDate
	TokSlash      // /
	TokSlashSlash // //
	TokLBracket   // [
	TokRBracket   // ]
	TokLParen     // (
	TokRParen     // )
	TokComma      // ,
	TokEq         // =
	TokNe         // !=
	TokLt         // <
	TokLe         // <=
	TokGt         // >
	TokGe         // >=
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of query"
	case TokWord:
		return "word"
	case TokString:
		return "string"
	case TokDate:
		return "date"
	case TokSlash:
		return "'/'"
	case TokSlashSlash:
		return "'//'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokEq:
		return "'='"
	case TokNe:
		return "'!='"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// SyntaxError reports a lexical or grammatical error with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("iql: syntax error at %d: %s", e.Pos, e.Msg)
}

// isWordRune reports whether r may appear inside a bare word. Words
// cover identifiers, numbers, and name patterns such as *.tex or
// ?onclusion* — including dots (A.tuple.label splits on '.' later).
func isWordRune(r rune) bool {
	if unicode.IsLetter(r) || unicode.IsDigit(r) {
		return true
	}
	switch r {
	case '*', '?', '.', '_', '-', '#', ':', '~', '\'':
		return true
	}
	return false
}

// Lex splits a query into tokens.
func Lex(src string) ([]Token, error) {
	var out []Token
	runes := []rune(src)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '/':
			if i+1 < len(runes) && runes[i+1] == '/' {
				out = append(out, Token{TokSlashSlash, "//", i})
				i += 2
			} else {
				out = append(out, Token{TokSlash, "/", i})
				i++
			}
		case r == '[':
			out = append(out, Token{TokLBracket, "[", i})
			i++
		case r == ']':
			out = append(out, Token{TokRBracket, "]", i})
			i++
		case r == '(':
			out = append(out, Token{TokLParen, "(", i})
			i++
		case r == ')':
			out = append(out, Token{TokRParen, ")", i})
			i++
		case r == ',':
			out = append(out, Token{TokComma, ",", i})
			i++
		case r == '=':
			out = append(out, Token{TokEq, "=", i})
			i++
		case r == '!':
			if i+1 < len(runes) && runes[i+1] == '=' {
				out = append(out, Token{TokNe, "!=", i})
				i += 2
			} else {
				return nil, &SyntaxError{i, "expected '=' after '!'"}
			}
		case r == '<':
			if i+1 < len(runes) && runes[i+1] == '=' {
				out = append(out, Token{TokLe, "<=", i})
				i += 2
			} else {
				out = append(out, Token{TokLt, "<", i})
				i++
			}
		case r == '>':
			if i+1 < len(runes) && runes[i+1] == '=' {
				out = append(out, Token{TokGe, ">=", i})
				i += 2
			} else {
				out = append(out, Token{TokGt, ">", i})
				i++
			}
		case r == '"':
			start := i
			i++
			var b strings.Builder
			for i < len(runes) && runes[i] != '"' {
				if runes[i] == '\\' && i+1 < len(runes) {
					i++
				}
				b.WriteRune(runes[i])
				i++
			}
			if i >= len(runes) {
				return nil, &SyntaxError{start, "unterminated string"}
			}
			i++ // closing quote
			out = append(out, Token{TokString, b.String(), start})
		case r == '@':
			start := i
			i++
			var b strings.Builder
			for i < len(runes) && (unicode.IsDigit(runes[i]) || runes[i] == '.' || runes[i] == '-') {
				b.WriteRune(runes[i])
				i++
			}
			if b.Len() == 0 {
				return nil, &SyntaxError{start, "expected date after '@'"}
			}
			out = append(out, Token{TokDate, b.String(), start})
		case isWordRune(r):
			start := i
			var b strings.Builder
			for i < len(runes) && isWordRune(runes[i]) {
				b.WriteRune(runes[i])
				i++
			}
			out = append(out, Token{TokWord, b.String(), start})
		default:
			return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", r)}
		}
	}
	out = append(out, Token{TokEOF, "", len(runes)})
	return out, nil
}
