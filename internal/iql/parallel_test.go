package iql

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// requireSameResult fails unless two results carry byte-identical
// Columns and Rows.
func requireSameResult(t *testing.T, label string, serial, parallel *Result) {
	t.Helper()
	if !reflect.DeepEqual(serial.Columns, parallel.Columns) {
		t.Fatalf("%s: columns diverge: %v vs %v", label, serial.Columns, parallel.Columns)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatalf("%s: rows diverge:\nserial:   %v\nparallel: %v", label, serial.Rows, parallel.Rows)
	}
}

// TestParallelEquivalenceRandom checks that parallel execution returns
// byte-identical rows to serial execution for every expansion strategy
// over random dataspaces and random path queries.
func TestParallelEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		f := randomStore(rng, 30+rng.Intn(120))
		q := randomQuery(rng)
		for _, exp := range []Expansion{ForwardExpansion, BackwardExpansion, AutoExpansion} {
			serialEng := NewEngine(f, Options{Expansion: exp, Now: fixedNow, Parallelism: 1})
			want, err := serialEng.Query(q)
			if err != nil {
				t.Fatalf("trial %d: serial %v: Query(%q): %v", trial, exp, q, err)
			}
			for _, par := range []int{4, 8} {
				eng := NewEngine(f, Options{Expansion: exp, Now: fixedNow, Parallelism: par})
				got, err := eng.Query(q)
				if err != nil {
					t.Fatalf("trial %d: par=%d %v: Query(%q): %v", trial, par, exp, q, err)
				}
				requireSameResult(t, fmt.Sprintf("trial %d %v par=%d %q", trial, exp, par, q), want, got)
				if want.Plan.Intermediates != got.Plan.Intermediates {
					t.Fatalf("trial %d %v par=%d %q: intermediates %d vs %d",
						trial, exp, par, q, want.Plan.Intermediates, got.Plan.Intermediates)
				}
			}
		}
	}
}

// TestParallelEquivalenceUnionJoin covers the union and join operators,
// whose parallel plans differ structurally from the path case.
func TestParallelEquivalenceUnionJoin(t *testing.T) {
	f := paperStore()
	queries := []string{
		`union( //PIM//*["Franklin"], //papers//*["Franklin"] )`,
		`union( //*["Franklin"], //*["Franklin"], //[class="figure"] )`,
		`join( //[class="texref"] as A, //[class="figure"] as B, A.name = B.tuple.label )`,
		`join( //[class="latex_section"] as A, //[class="latex_section"] as B, A.name = B.name )`,
	}
	for _, q := range queries {
		serial := NewEngine(f, Options{Now: fixedNow, Parallelism: 1})
		want, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial Query(%q): %v", q, err)
		}
		for _, par := range []int{4, 8} {
			eng := NewEngine(f, Options{Now: fixedNow, Parallelism: par})
			got, err := eng.Query(q)
			if err != nil {
				t.Fatalf("par=%d Query(%q): %v", par, q, err)
			}
			requireSameResult(t, fmt.Sprintf("par=%d %q", par, q), want, got)
		}
	}
}

// TestConcurrentQueries hammers one engine from many goroutines; run
// with -race to catch shared-state races in the evaluator's memoized
// index lookups and plan counters.
func TestConcurrentQueries(t *testing.T) {
	f := paperStore()
	eng := NewEngine(f, Options{Expansion: AutoExpansion, Now: fixedNow, Parallelism: 4})
	queries := []string{
		`//root//Introduction`,
		`//*["Franklin"]`,
		`//papers//[class="latex_section" and "Vision"]`,
		`union( //PIM//*["Franklin"], //papers//*["Franklin"] )`,
		`join( //[class="texref"] as A, //[class="figure"] as B, A.name = B.tuple.label )`,
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := eng.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		want[i] = r
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := (g + i) % len(queries)
				r, err := eng.Query(queries[k])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: Query(%q): %v", g, queries[k], err)
					return
				}
				if !reflect.DeepEqual(r.Rows, want[k].Rows) {
					errs <- fmt.Errorf("goroutine %d: %q rows diverged", g, queries[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// chainStore builds root(1) -> 2 -> ... -> n, so expanding `//root//*`
// forward touches exactly n-1 views.
func chainStore(n int) *fakeStore {
	f := newFakeStore()
	f.add(1, "root", core.ClassFolder, "", core.EmptyTuple())
	for i := 2; i <= n; i++ {
		f.add(catalog.OID(i), fmt.Sprintf("v%d", i), core.ClassFolder, "", core.EmptyTuple(), catalog.OID(i-1))
	}
	return f
}

// TestBudgetBoundary pins the budget semantics: an expansion touching
// exactly Budget views succeeds; one more view fails. (The previous
// implementation rejected the Budget-th view.)
func TestBudgetBoundary(t *testing.T) {
	const n = 7 // expansion below touches views 2..7 = 6 views
	f := chainStore(n)
	for _, par := range []int{1, 8} {
		eng := NewEngine(f, Options{Budget: n - 1, Now: fixedNow, Parallelism: par})
		res, err := eng.Query(`//root//*`)
		if err != nil {
			t.Fatalf("par=%d Budget=%d: %v", par, n-1, err)
		}
		if res.Count() != n-1 {
			t.Fatalf("par=%d: count = %d, want %d", par, res.Count(), n-1)
		}
		eng = NewEngine(f, Options{Budget: n - 2, Now: fixedNow, Parallelism: par})
		if _, err := eng.Query(`//root//*`); err == nil {
			t.Fatalf("par=%d Budget=%d: expected budget error", par, n-2)
		}
	}
}

// TestAutoExpansionSingleResolve verifies the auto strategy resolves
// each anchor step exactly once: the plan must report one resolution of
// the first step and one of the last, with no duplicate index work.
func TestAutoExpansionSingleResolve(t *testing.T) {
	f := paperStore()
	auto := NewEngine(f, Options{Expansion: AutoExpansion, Now: fixedNow, Parallelism: 1})
	res, err := auto.Query(`//root//Introduction`)
	if err != nil {
		t.Fatal(err)
	}
	// Auto picks backward here (1 root vs 2 Introductions is false:
	// first=1 last=2 → forward... whichever it picks, the index-access
	// count must not exceed the chosen strategy's own accesses plus one
	// extra anchor resolution.
	fwd := NewEngine(f, Options{Expansion: ForwardExpansion, Now: fixedNow, Parallelism: 1})
	fres, err := fwd.Query(`//root//Introduction`)
	if err != nil {
		t.Fatal(err)
	}
	bwd := NewEngine(f, Options{Expansion: BackwardExpansion, Now: fixedNow, Parallelism: 1})
	bres, err := bwd.Query(`//root//Introduction`)
	if err != nil {
		t.Fatal(err)
	}
	max := fres.Plan.IndexAccesses
	if bres.Plan.IndexAccesses > max {
		max = bres.Plan.IndexAccesses
	}
	// One extra resolveStep for the non-chosen anchor, which costs at
	// most two index accesses (name + class); anything above that means
	// a step was resolved twice.
	if res.Plan.IndexAccesses > max+2 {
		t.Errorf("auto expansion index accesses = %d, forward %d, backward %d: anchor resolved twice?",
			res.Plan.IndexAccesses, fres.Plan.IndexAccesses, bres.Plan.IndexAccesses)
	}
}
