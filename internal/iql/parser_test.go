package iql

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`//PIM//Introduction[class="latex_section" and "Mike Franklin"]`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{
		TokSlashSlash, TokWord, TokSlashSlash, TokWord, TokLBracket,
		TokWord, TokEq, TokString, TokWord, TokString, TokRBracket, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v %q, want %v", i, toks[i].Kind, toks[i].Text, k)
		}
	}
	if toks[9].Text != "Mike Franklin" {
		t.Errorf("phrase = %q", toks[9].Text)
	}
}

func TestLexOperatorsAndDates(t *testing.T) {
	toks, err := Lex(`[size > 420000 and lastmodified < @12.06.2005]`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{TokLBracket, TokWord, TokGt, TokWord, TokWord,
		TokWord, TokLt, TokDate, TokRBracket, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexWildcardWords(t *testing.T) {
	toks, err := Lex(`//VLDB200?//?onclusion*/*["systems"]`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "VLDB200?" || toks[3].Text != "?onclusion*" || toks[5].Text != "*" {
		t.Errorf("patterns = %q %q %q", toks[1].Text, toks[3].Text, toks[5].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{`"unterminated`, `size ! 4`, `@`, "`"} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) accepted", bad)
		}
	}
}

func fixedNow() time.Time {
	return time.Date(2005, 6, 15, 10, 0, 0, 0, time.UTC)
}

func parse(t *testing.T, src string) Query {
	t.Helper()
	q, err := ParseWith(src, ParseOptions{Now: fixedNow})
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseBarePhrase(t *testing.T) {
	q := parse(t, `"Donald Knuth"`)
	pq, ok := q.(*PredQuery)
	if !ok {
		t.Fatalf("%T", q)
	}
	ph, ok := pq.Pred.(*PhraseExpr)
	if !ok || ph.Phrase != "Donald Knuth" {
		t.Errorf("pred = %v", pq.Pred)
	}
}

func TestParseKeywordConjunction(t *testing.T) {
	q := parse(t, `"Donald" and "Knuth"`)
	pq := q.(*PredQuery)
	and, ok := pq.Pred.(*AndExpr)
	if !ok {
		t.Fatalf("pred = %T", pq.Pred)
	}
	if and.L.(*PhraseExpr).Phrase != "Donald" || and.R.(*PhraseExpr).Phrase != "Knuth" {
		t.Errorf("and = %v", and)
	}
}

func TestParseOrNotPrecedence(t *testing.T) {
	q := parse(t, `"a" or "b" and not "c"`)
	pq := q.(*PredQuery)
	or, ok := pq.Pred.(*OrExpr)
	if !ok {
		t.Fatalf("top = %T (and must bind tighter than or)", pq.Pred)
	}
	and, ok := or.R.(*AndExpr)
	if !ok {
		t.Fatalf("right of or = %T", or.R)
	}
	if _, ok := and.R.(*NotExpr); !ok {
		t.Errorf("not missing: %v", and.R)
	}
}

func TestParseAttributePredicate(t *testing.T) {
	q := parse(t, `[size > 42000 and lastmodified < yesterday()]`)
	pq := q.(*PredQuery)
	and := pq.Pred.(*AndExpr)
	size := and.L.(*CmpExpr)
	if size.Attr != "size" || size.Op != OpGt || size.Value.Int != 42000 {
		t.Errorf("size cmp = %+v", size)
	}
	lm := and.R.(*CmpExpr)
	if lm.Attr != "lastmodified" || lm.Op != OpLt {
		t.Errorf("lm cmp = %+v", lm)
	}
	wantYesterday := time.Date(2005, 6, 14, 0, 0, 0, 0, time.UTC)
	if !lm.Value.Time.Equal(wantYesterday) {
		t.Errorf("yesterday() = %v, want %v", lm.Value.Time, wantYesterday)
	}
}

func TestParseDateLiteral(t *testing.T) {
	q := parse(t, `[lastmodified < @12.06.2005]`)
	cmp := q.(*PredQuery).Pred.(*CmpExpr)
	want := time.Date(2005, 6, 12, 0, 0, 0, 0, time.UTC)
	if !cmp.Value.Time.Equal(want) {
		t.Errorf("date = %v", cmp.Value.Time)
	}
	// ISO order too.
	q = parse(t, `[lastmodified < @2005-06-12]`)
	cmp = q.(*PredQuery).Pred.(*CmpExpr)
	if !cmp.Value.Time.Equal(want) {
		t.Errorf("iso date = %v", cmp.Value.Time)
	}
}

func TestParsePathSteps(t *testing.T) {
	q := parse(t, `//PIM//Introduction[class="latex_section" and "Mike Franklin"]`)
	p, ok := q.(*PathQuery)
	if !ok {
		t.Fatalf("%T", q)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0].Axis != Descendant || p.Steps[0].Pattern != "PIM" || p.Steps[0].Pred != nil {
		t.Errorf("step 0 = %+v", p.Steps[0])
	}
	s1 := p.Steps[1]
	if s1.Pattern != "Introduction" || s1.Pred == nil {
		t.Errorf("step 1 = %+v", s1)
	}
	and := s1.Pred.(*AndExpr)
	if and.L.(*ClassExpr).Class != "latex_section" {
		t.Errorf("class = %v", and.L)
	}
}

func TestParsePathMixedAxes(t *testing.T) {
	q := parse(t, `//papers//*Vision/*["Franklin"]`)
	p := q.(*PathQuery)
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[1].Pattern != "*Vision" || p.Steps[1].Axis != Descendant {
		t.Errorf("step 1 = %+v", p.Steps[1])
	}
	if p.Steps[2].Axis != Child || !p.Steps[2].AnyName() || p.Steps[2].Pred == nil {
		t.Errorf("step 2 = %+v", p.Steps[2])
	}
}

func TestParsePredOnlyStep(t *testing.T) {
	// Q2-style: //OLAP//[class="figure" and "Indexing time"]
	q := parse(t, `//OLAP//[class="figure" and "Indexing time"]`)
	p := q.(*PathQuery)
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if !p.Steps[1].AnyName() || p.Steps[1].Pred == nil {
		t.Errorf("step 1 = %+v", p.Steps[1])
	}
}

func TestParseUnion(t *testing.T) {
	q := parse(t, `union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])`)
	u, ok := q.(*UnionQuery)
	if !ok || len(u.Args) != 2 {
		t.Fatalf("union = %+v", q)
	}
	for _, a := range u.Args {
		if _, ok := a.(*PathQuery); !ok {
			t.Errorf("arg = %T", a)
		}
	}
}

func TestParseJoinQ7(t *testing.T) {
	src := `join( //VLDB2006//*[class="texref"] as A,
		//VLDB2006//*[class="environment"]//figure* as B,
		A.name=B.tuple.label)`
	q := parse(t, src)
	j, ok := q.(*JoinQuery)
	if !ok {
		t.Fatalf("%T", q)
	}
	if j.LeftAs != "A" || j.RightAs != "B" {
		t.Errorf("aliases = %q, %q", j.LeftAs, j.RightAs)
	}
	if j.On[0].Kind != FieldName || j.On[1].Kind != FieldTupleAttr || j.On[1].Attr != "label" {
		t.Errorf("on = %+v", j.On)
	}
	right := j.Right.(*PathQuery)
	lastStep := right.Steps[len(right.Steps)-1]
	if lastStep.Pattern != "figure*" {
		t.Errorf("right last step = %+v", lastStep)
	}
}

func TestParseJoinQ8SwappedOperands(t *testing.T) {
	// Operands given right-first must normalize.
	src := `join( //a as A, //b as B, B.name = A.name )`
	q := parse(t, src)
	j := q.(*JoinQuery)
	if j.On[0].Alias != "A" || j.On[1].Alias != "B" {
		t.Errorf("operands not normalized: %+v", j.On)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		``,
		`union(//a)`, // too few args
		`join(//a as A, //b as B, A.size=B.name)`, // bad field
		`join(//a as A, //b as B, C.name=B.name)`, // alias mismatch
		`[size >]`,
		`[size 4]`,
		`["a" and ]`,
		`//a[`,
		`//a] extra`,
		`[not]`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseBareDoubleSlashAllowed(t *testing.T) {
	// `//` alone means "any view" — a single unconstrained step.
	q, err := Parse(`//`)
	if err != nil {
		t.Fatalf("//: %v", err)
	}
	p := q.(*PathQuery)
	if len(p.Steps) != 1 || !p.Steps[0].AnyName() {
		t.Errorf("steps = %+v", p.Steps)
	}
}

func TestQueryStringRoundtrip(t *testing.T) {
	sources := []string{
		`"Donald Knuth"`,
		`//PIM//Introduction[class="latex_section" and "Mike Franklin"]`,
		`//papers//*Vision/*["Franklin"]`,
		`[size > 420000 and lastmodified < @12.06.2005]`,
		`union( //VLDB2005//*["documents"], //VLDB2006//*["documents"] )`,
		`join( //VLDB2006//*[class="texref"] as A, //VLDB2006//*[class="environment"]//figure* as B, A.name=B.tuple.label )`,
	}
	for _, src := range sources {
		q := parse(t, src)
		rendered := q.String()
		q2, err := ParseWith(rendered, ParseOptions{Now: fixedNow})
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", rendered, src, err)
			continue
		}
		if q2.String() != rendered {
			t.Errorf("String() not stable: %q → %q", rendered, q2.String())
		}
	}
}

// Property: any conjunction of quoted random phrases parses and renders
// stably.
func TestParsePhrasesPropertyQuick(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if r == '"' || r == '\\' || r < ' ' {
					return -1
				}
				return r
			}, w)
			if strings.TrimSpace(w) != "" {
				clean = append(clean, w)
			}
		}
		if len(clean) == 0 {
			return true
		}
		src := `"` + strings.Join(clean, `" and "`) + `"`
		q, err := Parse(src)
		if err != nil {
			return false
		}
		q2, err := Parse(q.String())
		return err == nil && q2.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
