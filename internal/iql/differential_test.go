package iql

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
)

// differentialStore builds a vocabulary-aligned dataspace large enough
// that the parallel evaluator actually fans out (frontiers well beyond
// parThreshold). Names, classes, phrases, labels and tuple attributes
// all come from DefaultVocab so generated queries hit real index paths.
func differentialStore(seed int64, n int) *fakeStore {
	rng := rand.New(rand.NewSource(seed))
	v := DefaultVocab()
	sizes := []int64{0, 1, 1024, 4096, 42000, 50000}
	f := newFakeStore()
	f.add(1, "root", core.ClassFolder, "", core.EmptyTuple())
	level := []catalog.OID{1}
	next := catalog.OID(2)
	for int(next) <= n && len(level) > 0 {
		var nl []catalog.OID
		for _, p := range level {
			fan := 2 + rng.Intn(7)
			for i := 0; i < fan && int(next) <= n; i++ {
				name := v.Names[rng.Intn(len(v.Names))]
				if rng.Intn(2) == 0 {
					name = fmt.Sprintf("%s-%d", name, next)
				}
				class := v.Classes[rng.Intn(len(v.Classes))]
				content := ""
				for w := 0; w < rng.Intn(3); w++ {
					content += v.Phrases[rng.Intn(len(v.Phrases))] + " "
				}
				tc := core.EmptyTuple()
				switch rng.Intn(3) {
				case 0:
					tc = core.TupleComponent{
						Schema: core.FSSchema,
						Tuple: core.Tuple{core.Int(sizes[rng.Intn(len(sizes))]),
							core.Time(time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)),
							core.Time(time.Date(2005, 6, 1+rng.Intn(28), 0, 0, 0, 0, time.UTC))},
					}
				case 1:
					tc = core.TupleComponent{
						Schema: core.Schema{{Name: "label", Domain: core.DomainString}},
						Tuple:  core.Tuple{core.String(v.Names[rng.Intn(len(v.Names))])},
					}
				}
				parents := []catalog.OID{p}
				// Occasional extra parent turns the tree into a DAG.
				if next > 3 && rng.Intn(6) == 0 {
					parents = append(parents, catalog.OID(1+rng.Int63n(int64(next-1))))
				}
				f.add(next, name, class, content, tc, parents...)
				nl = append(nl, next)
				next++
			}
		}
		level = nl
	}
	return f
}

// diffLanes labels the three execution lanes the differential property
// compares: serial (rule planner, Parallelism 1), forced-parallel (rule
// planner, Parallelism 8), and planner-adaptive (cost-based planner,
// Parallelism 8, with PlannerProcs 4 so parallel plans stay reachable
// on single-core CI machines the adaptive planner would otherwise
// serialize).
var diffLanes = [3]string{"serial", "parallel", "adaptive"}

// diffEngines builds the three lanes for every expansion strategy over
// f. The fakeStore implements StatsProvider, so the adaptive lane
// exercises estimate-driven direction choice, union ordering, join
// build-side selection and residual-filter elision.
func diffEngines(f *fakeStore) map[string][3]*Engine {
	out := make(map[string][3]*Engine)
	for name, exp := range map[string]Expansion{
		"forward": ForwardExpansion, "backward": BackwardExpansion, "auto": AutoExpansion,
	} {
		out[name] = [3]*Engine{
			NewEngine(f, Options{Expansion: exp, Now: fixedNow, Parallelism: 1}),
			NewEngine(f, Options{Expansion: exp, Now: fixedNow, Parallelism: 8}),
			NewEngine(f, Options{Expansion: exp, Now: fixedNow, Parallelism: 8,
				Planner: PlannerAdaptive, PlannerProcs: 4}),
		}
	}
	return out
}

// diffOne runs q on every lane and fails unless all lanes agree with
// the serial baseline on error status and, when successful, on exact
// rows.
func diffOne(t *testing.T, label, q string, lanes [3]*Engine) {
	t.Helper()
	rs, errS := lanes[0].Query(q)
	for i := 1; i < len(lanes); i++ {
		r, err := lanes[i].Query(q)
		if (errS == nil) != (err == nil) {
			t.Fatalf("%s: %q: serial err = %v, %s err = %v", label, q, errS, diffLanes[i], err)
		}
		if errS != nil {
			continue
		}
		requireSameResult(t, label+" "+diffLanes[i]+" "+q, rs, r)
	}
}

// TestDifferentialSerialParallel is the acceptance property from the
// fault-injection issue: 1000 seeded grammar-driven query generations
// must evaluate identically under serial and parallel execution for
// every expansion strategy, on a store wide enough to trigger real
// worker fan-out.
func TestDifferentialSerialParallel(t *testing.T) {
	generations := 1000
	if testing.Short() {
		generations = 100
	}
	f := differentialStore(99, 1500)
	engines := diffEngines(f)
	g := NewGen(2006, DefaultVocab())
	for i := 0; i < generations; i++ {
		q := g.Query()
		for name, lanes := range engines {
			diffOne(t, fmt.Sprintf("gen %d %s", i, name), q, lanes)
		}
	}
}

// TestGenProducesParseableQueries pins the generator to the grammar:
// every generated query must parse, and must survive the parse∘render
// fixpoint the parser fuzzer enforces.
func TestGenProducesParseableQueries(t *testing.T) {
	g := NewGen(7, DefaultVocab())
	for i := 0; i < 500; i++ {
		q := g.Query()
		ast, err := ParseWith(q, ParseOptions{Now: fixedNow})
		if err != nil {
			t.Fatalf("generated query %d does not parse: %q: %v", i, q, err)
		}
		if _, err := ParseWith(ast.String(), ParseOptions{Now: fixedNow}); err != nil {
			t.Fatalf("rendering of generated query %d does not re-parse: %q: %v", i, ast.String(), err)
		}
	}
}

// TestGenCoversGrammar checks the generator actually reaches every
// production, so the differential suite is not silently narrow.
func TestGenCoversGrammar(t *testing.T) {
	g := NewGen(11, DefaultVocab())
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		q := g.Query()
		ast, err := ParseWith(q, ParseOptions{Now: fixedNow})
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		switch ast.(type) {
		case *PathQuery:
			seen["path"] = true
		case *PredQuery:
			seen["pred"] = true
		case *UnionQuery:
			seen["union"] = true
		case *JoinQuery:
			seen["join"] = true
		}
	}
	for _, kind := range []string{"path", "pred", "union", "join"} {
		if !seen[kind] {
			t.Errorf("generator never produced a %s query", kind)
		}
	}
}

// FuzzDifferential drives the three-lane differential property with Go
// native fuzzing: each input seeds the grammar generator, and the
// resulting query must agree across serial, forced-parallel and
// planner-adaptive execution under all three expansion strategies.
// Seed corpus: testdata/fuzz/FuzzDifferential.
func FuzzDifferential(f *testing.F) {
	for _, seed := range []int64{0, 1, 42, 2006, 1 << 40, 7_2026, 424243} {
		f.Add(seed)
	}
	store := differentialStore(99, 400)
	engines := diffEngines(store)
	f.Fuzz(func(t *testing.T, seed int64) {
		g := NewGen(seed, DefaultVocab())
		for i := 0; i < 3; i++ {
			q := g.Query()
			for name, lanes := range engines {
				diffOne(t, fmt.Sprintf("seed %d gen %d %s", seed, i, name), q, lanes)
			}
		}
	})
}
