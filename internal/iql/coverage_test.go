package iql

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestParseDeleteStatement(t *testing.T) {
	q := parse(t, `delete //docs//[name = "*.tmp"]`)
	del, ok := q.(*DeleteQuery)
	if !ok {
		t.Fatalf("%T", q)
	}
	if _, ok := del.Inner.(*PathQuery); !ok {
		t.Errorf("inner = %T", del.Inner)
	}
	rendered := del.String()
	if !strings.HasPrefix(rendered, "delete //docs") {
		t.Errorf("rendered = %q", rendered)
	}
	// Roundtrip.
	q2 := parse(t, rendered)
	if q2.String() != rendered {
		t.Errorf("roundtrip: %q → %q", rendered, q2.String())
	}
	// Engines refuse delete statements.
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	if _, err := e.Exec(del); err == nil {
		t.Error("engine executed a delete")
	}
}

func TestParseDateFunctions(t *testing.T) {
	q := parse(t, `[lastmodified < now() and creationtime < today()]`)
	and := q.(*PredQuery).Pred.(*AndExpr)
	nowCmp := and.L.(*CmpExpr)
	if !nowCmp.Value.Time.Equal(fixedNow()) {
		t.Errorf("now() = %v", nowCmp.Value.Time)
	}
	todayCmp := and.R.(*CmpExpr)
	if todayCmp.Value.Time.Hour() != 0 {
		t.Errorf("today() = %v (not truncated)", todayCmp.Value.Time)
	}
	if _, err := Parse(`[x < tomorrow()]`); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestParseFloatAndBoolLiterals(t *testing.T) {
	q := parse(t, `[weight > 2.5]`)
	cmp := q.(*PredQuery).Pred.(*CmpExpr)
	if cmp.Value.Kind != core.DomainFloat || cmp.Value.Float != 2.5 {
		t.Errorf("float literal = %+v", cmp.Value)
	}
	q = parse(t, `[starred = true and hidden != false]`)
	and := q.(*PredQuery).Pred.(*AndExpr)
	if and.L.(*CmpExpr).Value.Kind != core.DomainBool {
		t.Error("bool literal not parsed")
	}
	if _, err := Parse(`[x = @notadate]`); err == nil {
		t.Error("bad date accepted")
	}
	if _, err := Parse(`[x = nonliteral]`); err == nil {
		t.Error("bare word literal accepted")
	}
}

func TestParseJoinErrorPaths(t *testing.T) {
	bad := []string{
		`join //a as A, //b as B, A.name=B.name )`,  // missing (
		`join( //a A, //b as B, A.name=B.name )`,    // missing as
		`join( //a as A //b as B, A.name=B.name )`,  // missing comma
		`join( //a as A, //b as B, A.name B.name )`, // missing =
		`join( //a as A, //b as B, name=B.name )`,   // bad field ref
		`join( //a as A, //b as B, A.name=B.name`,   // missing )
		`join( //a as A, //b as B, A.x.y.z=B.name )`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseUnionOfJoinAndPath(t *testing.T) {
	q := parse(t, `union( join( //a as A, //b as B, A.name=B.name ), //c )`)
	u := q.(*UnionQuery)
	if _, ok := u.Args[0].(*JoinQuery); !ok {
		t.Errorf("arg0 = %T", u.Args[0])
	}
}

func TestJoinOnClassField(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	// Join views by having the same class.
	r, err := e.Query(`join( //PIM//Introduction as A, //papers//Introduction as B, A.class = B.class )`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 {
		t.Errorf("class join rows = %d", r.Count())
	}
}

func TestJoinBuildSideSelection(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	// Left side larger than right: the planner builds on the right...
	r, err := e.Query(`join( //* as A, //[class="figure"] as B, A.name = B.name )`)
	if err != nil {
		t.Fatal(err)
	}
	note := strings.Join(r.Plan.Notes, "\n")
	if !strings.Contains(note, "hash build on right side") {
		t.Errorf("plan = %s", note)
	}
	// ...and vice versa, with identical results modulo column order.
	r2, err := e.Query(`join( //[class="figure"] as A, //* as B, A.name = B.name )`)
	if err != nil {
		t.Fatal(err)
	}
	note2 := strings.Join(r2.Plan.Notes, "\n")
	if !strings.Contains(note2, "hash build on left side") {
		t.Errorf("plan2 = %s", note2)
	}
	if r.Count() != r2.Count() {
		t.Errorf("asymmetric join counts: %d vs %d", r.Count(), r2.Count())
	}
	// Rows keep (left, right) orientation regardless of build side.
	for _, row := range r.Rows {
		if f.classes[row[1]] != core.ClassFigure {
			t.Errorf("right column not the figure: %v", row)
		}
	}
	for _, row := range r2.Rows {
		if f.classes[row[0]] != core.ClassFigure {
			t.Errorf("left column not the figure: %v", row)
		}
	}
}

func TestJoinOnMissingTupleAttr(t *testing.T) {
	f := paperStore()
	e := NewEngine(f, Options{Now: fixedNow})
	r, err := e.Query(`join( //* as A, //* as B, A.tuple.nosuchattr = B.tuple.nosuchattr )`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 {
		t.Errorf("missing attr joined %d rows", r.Count())
	}
}

func TestCollectPhrasesAcrossQueryKinds(t *testing.T) {
	q := parse(t, `union( //a["u1"], join( //b["j1"] as A, //c[not "neg" and "j2"] as B, A.name=B.name ) )`)
	got := collectPhrases(q)
	want := []string{"u1", "j1", "j2"}
	if len(got) != len(want) {
		t.Fatalf("phrases = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("phrase %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestHasBranchPredicate(t *testing.T) {
	f := paperStore()
	// Folders that (transitively) contain a figure: VLDB2006, papers,
	// root — but not PIM.
	r := runAll(t, f, `//[class="folder" and has(//[class="figure"])]`)
	got := oidsOf(r)
	if len(got) != 3 {
		t.Fatalf("folders with figures = %v", got)
	}
	for _, oid := range got {
		if oid == 10 {
			t.Error("PIM has no figure")
		}
	}
	// Direct-child branch: only vldb.tex has a figure as a direct child.
	r = runAll(t, f, `//[has(/figure*)]`)
	got = oidsOf(r)
	// vldb.tex (4) has figure as direct child; the texref (7) points at
	// it directly too.
	if len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Errorf("direct figure parents = %v", got)
	}
	// Multi-step branch.
	r = runAll(t, f, `//papers[has(//document/Introduction)]`)
	if got := oidsOf(r); len(got) != 1 || got[0] != 2 {
		t.Errorf("papers with document/Introduction = %v", got)
	}
	// Non-matching branch.
	r = runAll(t, f, `//[class="folder" and has(//nosuchname)]`)
	if got := oidsOf(r); len(got) != 0 {
		t.Errorf("phantom branch matched %v", got)
	}
}

func TestHasBranchParseAndRender(t *testing.T) {
	q := parse(t, `//PIM[has(//figure*[class="environment"])]`)
	p := q.(*PathQuery)
	has, ok := p.Steps[0].Pred.(*HasExpr)
	if !ok {
		t.Fatalf("pred = %T", p.Steps[0].Pred)
	}
	if len(has.Steps) != 1 || has.Steps[0].Pattern != "figure*" {
		t.Errorf("branch = %+v", has.Steps)
	}
	// Roundtrip.
	q2 := parse(t, q.String())
	if q2.String() != q.String() {
		t.Errorf("roundtrip: %q → %q", q.String(), q2.String())
	}
	// Errors.
	for _, bad := range []string{`//a[has(]`, `//a[has(//b]`, `//a[has //b)]`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// A bare word "has" without parens is still an attribute name.
	if _, err := Parse(`//a[has = 3]`); err != nil {
		t.Errorf("has as attribute: %v", err)
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []TokenKind{TokEOF, TokWord, TokString, TokDate, TokSlash,
		TokSlashSlash, TokLBracket, TokRBracket, TokLParen, TokRParen,
		TokComma, TokEq, TokNe, TokLt, TokLe, TokGt, TokGe}
	for _, k := range kinds {
		if k.String() == "" || strings.HasPrefix(k.String(), "token(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse(`//a[size >]`)
	if err == nil {
		t.Fatal("no error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("%T", err)
	}
	if se.Pos <= 0 || !strings.Contains(se.Error(), "syntax error") {
		t.Errorf("err = %v", se)
	}
}

func TestExpansionString(t *testing.T) {
	if ForwardExpansion.String() != "forward" || BackwardExpansion.String() != "backward" || AutoExpansion.String() != "auto" {
		t.Error("Expansion strings wrong")
	}
}

func TestDefaultClockIsWallClock(t *testing.T) {
	// Parsing with the default options resolves yesterday() near now.
	q, err := Parse(`[lastmodified < yesterday()]`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.(*PredQuery).Pred.(*CmpExpr)
	if d := time.Since(cmp.Value.Time); d < 23*time.Hour || d > 49*time.Hour {
		t.Errorf("yesterday() = %v (%v ago)", cmp.Value.Time, d)
	}
}
