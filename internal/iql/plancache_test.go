package iql

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// versionedFake gives fakeStore the dataspace-version surface the
// engine's plan cache invalidates on.
type versionedFake struct {
	*fakeStore
	v uint64
}

func (s *versionedFake) Version() uint64 { return s.v }

func newVersionedFake() *versionedFake {
	return &versionedFake{fakeStore: newFakeStore(), v: 1}
}

// TestPlannerPlanCacheEstimateInvalidation pins the cache contract:
// estimates are reused while the dataspace version stands still and
// re-derived as soon as it moves.
func TestPlannerPlanCacheEstimateInvalidation(t *testing.T) {
	s := newVersionedFake()
	s.add(1, "a.txt", "textdocument", "alpha beta", core.TupleComponent{})
	s.add(2, "b.txt", "textdocument", "alpha", core.TupleComponent{})
	e := NewEngine(s, Options{Planner: PlannerAdaptive, Parallelism: 1})

	const src = `"alpha"`
	res, err := e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Plan.EstimatedRows
	if first != 2 {
		t.Fatalf("initial estimate = %d, want 2", first)
	}
	if _, ok := e.plans.parsedFor(src); !ok {
		t.Fatal("clock-independent parse was not cached")
	}

	// Same version: new data is invisible to the cached estimate (the
	// store's statistics would see it, but the cache answers first).
	s.add(3, "c.txt", "textdocument", "alpha gamma", core.TupleComponent{})
	res, err = e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.EstimatedRows != first {
		t.Fatalf("estimate changed without a version bump: %d -> %d", first, res.Plan.EstimatedRows)
	}

	// Version moved: the estimate must be re-derived.
	s.v++
	res, err = e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.EstimatedRows != 3 {
		t.Fatalf("estimate after version bump = %d, want 3", res.Plan.EstimatedRows)
	}
}

// TestPlannerPlanCacheClockDependentParse verifies queries whose parse
// consulted the clock are re-parsed every call, while clock-independent
// ones are cached.
func TestPlannerPlanCacheClockDependentParse(t *testing.T) {
	s := newVersionedFake()
	s.add(1, "a.txt", "textdocument", "alpha", core.TupleComponent{})
	e := NewEngine(s, Options{Planner: PlannerAdaptive, Parallelism: 1})

	clocked := `[lastmodified < today()]`
	if _, err := e.Query(clocked); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.plans.parsedFor(clocked); ok {
		t.Fatal("clock-dependent parse must not be cached")
	}

	absolute := `[lastmodified < @12.06.2005]`
	if _, err := e.Query(absolute); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.plans.parsedFor(absolute); !ok {
		t.Fatal("absolute-date parse should be cached")
	}
}

// TestPlannerPlanCacheUnversionedStore verifies a store without a
// Version surface disables estimate reuse (estimates could never be
// invalidated) but keeps parse caching, and that repeated queries stay
// correct.
func TestPlannerPlanCacheUnversionedStore(t *testing.T) {
	s := newFakeStore()
	s.add(1, "a.txt", "textdocument", "alpha", core.TupleComponent{})
	e := NewEngine(s, Options{Planner: PlannerAdaptive, Parallelism: 1})

	const src = `"alpha"`
	for i := 0; i < 2; i++ {
		res, err := e.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != 1 || res.Rows[0][0] != catalog.OID(1) {
			t.Fatalf("run %d: got %d rows", i, res.Count())
		}
	}
	e.plans.mu.RLock()
	defer e.plans.mu.RUnlock()
	if len(e.plans.est) != 0 {
		t.Fatalf("estimate cache populated without a version surface: %d entries", len(e.plans.est))
	}
	if len(e.plans.parsed) == 0 {
		t.Fatal("parse cache empty")
	}
}
