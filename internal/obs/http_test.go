package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestHandlerConcurrentRegistryMutation renders the debug surface while
// the registry underneath it is mutating: goroutines register brand-new
// counters/gauges/histograms and hammer existing ones, another records
// query-log entries, and the main loop scrapes /debug/metrics,
// /debug/metrics/prom and /debug/queries the whole time. Run under
// -race (the obs gate does), this pins that snapshotting a registry is
// safe against concurrent instrument registration — every response must
// be a 200 with parseable output.
func TestHandlerConcurrentRegistryMutation(t *testing.T) {
	reg := NewRegistry()
	qlog := NewQueryLog(32, time.Millisecond)
	h := HandlerWith(reg, qlog)
	// A sentinel series so the exposition is non-empty even if the first
	// scrape beats every mutator to the registry.
	reg.Counter("sentinel_total").Inc()

	stop := make(chan struct{})
	var wg, started sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		started.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Fresh names force registration mid-render; repeats
				// exercise the lookup path.
				reg.Counter(fmt.Sprintf("mut_%d_c_%d_total", g, i%97)).Inc()
				reg.Gauge(fmt.Sprintf("mut_%d_g_%d", g, i%31)).Set(int64(i))
				reg.Histogram(fmt.Sprintf("mut_%d_h_%d_ns", g, i%13), nil).Observe(int64(i))
				if i == 0 {
					started.Done()
				}
			}
		}(g)
	}
	// Every mutator has registered at least once before the scrape loop
	// starts, so the settled-state assertion below is deterministic.
	started.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			qlog.Record(QueryRecord{Query: fmt.Sprintf("q%d", i), DurationNs: int64(i), Rows: 1})
		}
	}()

	paths := []string{"/debug/metrics", "/debug/metrics/prom", "/debug/queries?n=10"}
	for i := 0; i < 150; i++ {
		for _, p := range paths {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
			if rec.Code != 200 {
				t.Fatalf("GET %s under mutation: status %d", p, rec.Code)
			}
			if p != "/debug/metrics/prom" {
				var v any
				if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
					t.Fatalf("GET %s under mutation: bad JSON: %v", p, err)
				}
			} else if rec.Body.Len() == 0 {
				t.Fatalf("GET %s under mutation: empty exposition", p)
			}
		}
	}
	close(stop)
	wg.Wait()

	// A final scrape sees the settled state: at least one mutator series
	// from every goroutine made it into the exposition.
	snap := reg.Snapshot()
	if len(snap.Counters) < 4 {
		t.Fatalf("settled snapshot lost counters: %d", len(snap.Counters))
	}
}
