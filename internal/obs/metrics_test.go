package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("queries_total"); again != c {
		t.Error("Counter did not return the registered instrument")
	}
	g := r.Gauge("subscribers")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.SetEnabled(true)
	if r.Enabled() {
		t.Error("nil registry enabled")
	}
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter recorded")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge recorded")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveSince(time.Now())
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	r.SetEnabled(false)
	c.Inc()
	h.Observe(1000)
	if c.Value() != 0 {
		t.Error("disabled counter recorded")
	}
	if r.Snapshot().Histograms["h"].Count != 0 {
		t.Error("disabled histogram recorded")
	}
	// Re-enabling resumes recording on the same instruments.
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Error("re-enabled counter did not record")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 5, 50, 50, 50, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 5+5+50+50+50+500+5000 {
		t.Errorf("sum = %d", s.Sum)
	}
	wantCounts := []int64{2, 3, 1, 1} // <=10, <=100, <=1000, overflow
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Min != 5 || s.Max != 5000 {
		t.Errorf("min/max = %d/%d, want 5/5000", s.Min, s.Max)
	}
	if m := s.Mean(); m != s.Sum/7 {
		t.Errorf("mean = %d", m)
	}
	// p50 falls in the (10,100] bucket; interpolation stays in range.
	if q := s.Quantile(0.5); q <= 10 || q > 100 {
		t.Errorf("p50 = %d, want in (10,100]", q)
	}
	// The top quantile lands in the overflow bucket and reports Max.
	if q := s.Quantile(1); q != 5000 {
		t.Errorf("p100 = %d, want 5000", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.9); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
}

func TestDefaultLatencyBucketsAscending(t *testing.T) {
	b := LatencyBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-1)
	r.Histogram("c", nil).Observe(int64(3 * time.Microsecond))
	var sb strings.Builder
	if err := r.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 3 || back.Gauges["b"] != -1 || back.Histograms["c"].Count != 1 {
		t.Errorf("round trip lost values: %+v", back)
	}
	names := r.Snapshot().CounterNames()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("counter names = %v", names)
	}
}

// TestConcurrentScrape runs writers against every instrument kind while
// a scraper snapshots continuously — under -race this proves the
// registry is torn-read-free.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	const writers, iters = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("level")
			h := r.Histogram("lat", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i) * 100)
				if i%100 == 0 {
					// Instrument registration races with scraping too.
					r.Counter("dynamic").Inc()
				}
			}
		}()
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				if snap.Counters["hits"] < 0 || snap.Histograms["lat"].Count < 0 {
					t.Error("scrape read a negative value")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scraped
	if got := r.Snapshot().Counters["hits"]; got != writers*iters {
		t.Errorf("hits = %d, want %d", got, writers*iters)
	}
	if got := r.Snapshot().Histograms["lat"].Count; got != writers*iters {
		t.Errorf("histogram count = %d, want %d", got, writers*iters)
	}
}
