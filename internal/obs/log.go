package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// The logging side of the package: one process-wide base logger that
// components derive scoped loggers from. The default base discards
// everything, so library code can log unconditionally; an application
// (cmd/imemex -debug-addr, tests) installs a real handler when it wants
// the stream.

var baseLogger atomic.Pointer[slog.Logger]

func init() {
	baseLogger.Store(slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// SetLogger installs the base logger all component loggers derive from.
// A nil logger restores the discarding default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	baseLogger.Store(l)
}

// SetLogOutput installs a text handler writing to w at the given level
// — the convenience form of SetLogger for CLIs.
func SetLogOutput(w io.Writer, level slog.Level) {
	SetLogger(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// Logger returns a logger scoped to one component of the PDSMS. The
// conventional component names are "rvm", "cache", "iql", "sources" and
// "stream"; callers fetch the logger at call time so a handler
// installed later takes effect everywhere.
func Logger(component string) *slog.Logger {
	return baseLogger.Load().With("component", component)
}
