package obs

import (
	"io"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) of a registry
// snapshot, so the debug surface has a real scraping story without any
// client-library dependency:
//
//   - counters render as `# TYPE <name> counter` plus one sample;
//   - gauges render as `# TYPE <name> gauge` plus one sample;
//   - histograms render with CUMULATIVE `_bucket{le="..."}` samples
//     (the snapshot's per-bucket counts summed up), an `le="+Inf"`
//     bucket equal to `_count`, and `_sum`/`_count` samples.
//
// Metric names are sanitized to the Prometheus charset; histogram
// bucket bounds keep their recorded unit (nanoseconds for latency
// histograms).

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in the Prometheus text format.
// Families are emitted in sorted name order, so output is stable for a
// fixed snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	b := &strings.Builder{}
	for _, name := range s.CounterNames() {
		writeFamily(b, promName(name), "counter", s.Counters[name])
	}
	for _, name := range s.GaugeNames() {
		writeFamily(b, promName(name), "gauge", s.Gauges[name])
	}
	for _, name := range s.HistogramNames() {
		writeHistogram(b, promName(name), s.Histograms[name])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, name, kind string, v int64) {
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(kind)
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name string, h HistogramSnapshot) {
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteString(" histogram\n")
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		b.WriteString(name)
		b.WriteString(`_bucket{le="`)
		b.WriteString(strconv.FormatInt(bound, 10))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString(`_bucket{le="+Inf"} `)
	b.WriteString(strconv.FormatInt(h.Count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum ")
	b.WriteString(strconv.FormatInt(h.Sum, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatInt(h.Count, 10))
	b.WriteByte('\n')
}

// promName maps a registry instrument name onto the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*, replacing anything else with '_'.
func promName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !promNameByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	if name == "" || !promNameByte(name[0], true) {
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		if promNameByte(name[i], false) {
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	default:
		return false
	}
}
