package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("idm_queries_total").Add(7)
	r.Gauge("idm_frontier_peak").Set(42)
	h := r.Histogram("idm_query_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 5, 50, 500, 5000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	wantLines := []string{
		"# TYPE idm_queries_total counter",
		"idm_queries_total 7",
		"# TYPE idm_frontier_peak gauge",
		"idm_frontier_peak 42",
		"# TYPE idm_query_ns histogram",
		`idm_query_ns_bucket{le="10"} 2`,
		`idm_query_ns_bucket{le="100"} 3`,
		`idm_query_ns_bucket{le="1000"} 4`,
		`idm_query_ns_bucket{le="+Inf"} 5`,
		"idm_query_ns_sum 5560",
		"idm_query_ns_count 5",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing line %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative and non-decreasing, and +Inf must equal
	// _count — the properties a Prometheus scraper relies on.
	var prev int64 = -1
	var inf, count int64 = -1, -1
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, `idm_query_ns_bucket{le="+Inf"} `):
			inf = lineValue(t, line)
		case strings.HasPrefix(line, "idm_query_ns_bucket"):
			v := lineValue(t, line)
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %d after %d in %q", v, prev, line)
			}
			prev = v
		case strings.HasPrefix(line, "idm_query_ns_count "):
			count = lineValue(t, line)
		}
	}
	if inf != count || inf != 5 {
		t.Fatalf("le=\"+Inf\" bucket %d != _count %d (want 5)", inf, count)
	}
}

func lineValue(t *testing.T, line string) int64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	v, err := strconv.ParseInt(line[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("unparseable sample %q: %v", line, err)
	}
	return v
}

func TestPrometheusNameSanitization(t *testing.T) {
	cases := map[string]string{
		"idm_queries_total": "idm_queries_total",
		"fed_peer_a.b_ns":   "fed_peer_a_b_ns",
		"q-latency":         "q_latency",
		"9lives":            "_9lives",
		"":                  "_",
		"ok:colon":          "ok:colon",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}

	// A registry with hostile names still renders parseable output.
	r := NewRegistry()
	r.Counter("fed_peer_bob@laptop_errors").Inc()
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fed_peer_bob_laptop_errors 1\n") {
		t.Fatalf("hostile name not sanitized:\n%s", b.String())
	}
}
