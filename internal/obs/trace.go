package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is one recorded operation — typically a query — as a tree of
// timed spans. A nil *Trace (and the nil *Spans it hands out) is the
// disabled state: every method no-ops, so instrumented code needs no
// enabled checks of its own.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span carries the given name.
func NewTrace(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() { t.Root().Finish() }

// Render returns the EXPLAIN-style tree rendering of the trace.
func (t *Trace) Render() string {
	if t == nil || t.root == nil {
		return ""
	}
	var b strings.Builder
	t.root.render(&b, "", "")
	return b.String()
}

// String implements fmt.Stringer.
func (t *Trace) String() string { return t.Render() }

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a trace. Spans are safe for concurrent
// use: parallel workers may start children of the same parent and
// annotate their own spans concurrently.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Start begins a child span. On a nil receiver it returns nil, which
// propagates the disabled state down the call tree.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish ends the span. Finishing twice keeps the first end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Set annotates the span with key=value.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Setf annotates the span with a formatted value. The formatting cost
// is only paid when the span is live.
func (s *Span) Setf(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf(format, args...))
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%d", v))
}

// Adopt grafts an independently recorded span tree under s — the
// federation uses it to merge each peer's own query trace into the
// federated trace. Adopting nil, or onto a nil span, no-ops.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Duration returns the span's elapsed time; an unfinished span reports
// the time since it started.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Find returns the first span in the subtree (pre-order, including s
// itself) whose name equals name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindPrefix returns the first span in the subtree whose name starts
// with prefix, or nil.
func (s *Span) FindPrefix(prefix string) *Span {
	if s == nil {
		return nil
	}
	if strings.HasPrefix(s.name, prefix) {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.FindPrefix(prefix); hit != nil {
			return hit
		}
	}
	return nil
}

// render writes the span subtree with box-drawing guides:
//
//	query "database"  1.2ms
//	├── parse  11µs
//	├── plan  2µs  strategy=forward
//	└── eval  1.1ms
//	    └── residual filter  900µs  candidates=1064
//	        ├── worker 0  450µs  range=[0,532)
//	        └── worker 1  440µs  range=[532,1064)
func (s *Span) render(b *strings.Builder, selfPrefix, childPrefix string) {
	b.WriteString(selfPrefix)
	b.WriteString(s.name)
	fmt.Fprintf(b, "  %s", s.Duration().Round(100*time.Nanosecond))
	for _, a := range s.Attrs() {
		fmt.Fprintf(b, "  %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	children := s.Children()
	for i, c := range children {
		if i == len(children)-1 {
			c.render(b, childPrefix+"└── ", childPrefix+"    ")
		} else {
			c.render(b, childPrefix+"├── ", childPrefix+"│   ")
		}
	}
}
