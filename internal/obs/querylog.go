package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// QueryRecord is one completed query as retained by the QueryLog: the
// query text, outcome, end-to-end latency and the engine's per-query
// resource accounting. Slow queries additionally carry the full
// EXPLAIN-style trace rendering.
type QueryRecord struct {
	// ID is the log-assigned sequence number (1-based, monotonic).
	ID uint64 `json:"id"`
	// Query is the iQL source text.
	Query string `json:"query"`
	// Start is when the query began.
	Start time.Time `json:"start"`
	// DurationNs is the end-to-end latency in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
	// Rows is the result row count (0 on error).
	Rows int64 `json:"rows"`
	// Error carries the failure message for failed queries.
	Error string `json:"error,omitempty"`
	// CacheHit marks queries answered from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Stale marks queries answered from degraded sources' replicas.
	Stale bool `json:"stale,omitempty"`
	// Slow marks records at or over the log's slow threshold.
	Slow bool `json:"slow,omitempty"`
	// Strategy is the planner's physical strategy for the top-level
	// operator ("forward", "backward", "predicate", "union", "join").
	Strategy string `json:"strategy,omitempty"`
	// Stats is the engine's resource accounting for this query.
	Stats QueryStatsRecord `json:"stats"`
	// Trace is the rendered span tree, captured for slow queries only.
	Trace string `json:"trace,omitempty"`
}

// QueryStatsRecord is the per-query resource accounting the engine
// hands the log: what the query cost, not just how long it took.
type QueryStatsRecord struct {
	// RowsScanned counts candidate views examined by residual filters
	// (including full catalog scans).
	RowsScanned int64 `json:"rows_scanned"`
	// PostingsRead counts index postings materialized from the name,
	// content, tuple and class indexes.
	PostingsRead int64 `json:"postings_read"`
	// ResidualFilters counts residual-filter stages the planner could
	// not elide.
	ResidualFilters int64 `json:"residual_filters"`
	// ViewsExpanded counts views touched during path expansion.
	ViewsExpanded int64 `json:"views_expanded"`
	// PeakFrontier is the largest BFS frontier/shard input the query's
	// expansion stages carried.
	PeakFrontier int64 `json:"peak_frontier"`
	// IndexAccesses counts index-backed candidate fetches.
	IndexAccesses int64 `json:"index_accesses"`
	// EstimatedRows is the cost-based planner's pre-execution bound
	// (-1 when no estimate was made).
	EstimatedRows int64 `json:"estimated_rows"`
}

// QueryLog retains the most recent completed queries in a fixed ring,
// plus a second ring of queries at or over a configurable slow
// threshold. Recording is lock-cheap — one short mutex section copying
// a small struct — and every method is nil-safe, so an unconfigured
// log costs a single pointer test on the query path.
type QueryLog struct {
	slowNs atomic.Int64 // threshold; <= 0 disables slow classification

	mu      sync.Mutex
	recent  []QueryRecord // ring, position (total-1) % cap
	slow    []QueryRecord
	total   uint64 // records ever written (also the next ID)
	slowTot uint64
}

// DefaultQueryLogSize is the ring capacity applied when NewQueryLog is
// given a non-positive capacity.
const DefaultQueryLogSize = 256

// NewQueryLog returns a log retaining up to capacity records (and up to
// capacity slow records), with the given slow threshold. capacity <= 0
// applies DefaultQueryLogSize; slow <= 0 disables slow classification.
func NewQueryLog(capacity int, slow time.Duration) *QueryLog {
	if capacity <= 0 {
		capacity = DefaultQueryLogSize
	}
	l := &QueryLog{
		recent: make([]QueryRecord, 0, capacity),
		slow:   make([]QueryRecord, 0, capacity),
	}
	l.slowNs.Store(int64(slow))
	return l
}

// SetSlowThreshold changes the slow threshold at runtime (<= 0
// disables). Already-retained records keep their classification.
func (l *QueryLog) SetSlowThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.slowNs.Store(int64(d))
}

// SlowThreshold returns the current slow threshold (0 for a nil log).
func (l *QueryLog) SlowThreshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.slowNs.Load())
}

// IsSlow reports whether a query of duration d classifies as slow.
func (l *QueryLog) IsSlow(d time.Duration) bool {
	if l == nil {
		return false
	}
	ns := l.slowNs.Load()
	return ns > 0 && int64(d) >= ns
}

// Record appends one completed query. The log assigns the ID and the
// Slow flag; a zero Start is back-derived from the duration.
func (l *QueryLog) Record(rec QueryRecord) {
	if l == nil {
		return
	}
	rec.Slow = l.IsSlow(time.Duration(rec.DurationNs))
	if rec.Start.IsZero() {
		rec.Start = time.Now().Add(-time.Duration(rec.DurationNs))
	}
	l.mu.Lock()
	l.total++
	rec.ID = l.total
	appendRing(&l.recent, rec)
	if rec.Slow {
		l.slowTot++
		appendRing(&l.slow, rec)
	}
	l.mu.Unlock()
}

// appendRing writes rec into the fixed-capacity ring backing *buf:
// it grows the slice until capacity, then overwrites the oldest slot.
// The logical order is reconstructed from the record IDs.
func appendRing(buf *[]QueryRecord, rec QueryRecord) {
	b := *buf
	if len(b) < cap(b) {
		*buf = append(b, rec)
		return
	}
	oldest := 0
	for i := range b {
		if b[i].ID < b[oldest].ID {
			oldest = i
		}
	}
	b[oldest] = rec
}

// Total returns the number of queries ever recorded.
func (l *QueryLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SlowTotal returns the number of slow queries ever recorded.
func (l *QueryLog) SlowTotal() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slowTot
}

// Recent returns up to n retained records, newest first (n <= 0 returns
// all retained). The returned slice is a copy.
func (l *QueryLog) Recent(n int) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := sortedCopy(l.recent)
	l.mu.Unlock()
	return trim(out, n)
}

// Slow returns up to n retained slow records, newest first.
func (l *QueryLog) Slow(n int) []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := sortedCopy(l.slow)
	l.mu.Unlock()
	return trim(out, n)
}

func sortedCopy(buf []QueryRecord) []QueryRecord {
	out := append([]QueryRecord(nil), buf...)
	// Newest (highest ID) first; the ring is small, insertion sort is
	// plenty.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID > out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func trim(out []QueryRecord, n int) []QueryRecord {
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// QueryLogSnapshot is the JSON shape of /debug/queries.
type QueryLogSnapshot struct {
	// Enabled is false when no query log is configured.
	Enabled bool `json:"enabled"`
	// Total / SlowTotal count queries ever recorded (the rings retain
	// only the most recent ones).
	Total     uint64 `json:"total"`
	SlowTotal uint64 `json:"slow_total"`
	// SlowThresholdNs is the current slow threshold (0 = disabled).
	SlowThresholdNs int64         `json:"slow_threshold_ns"`
	Recent          []QueryRecord `json:"recent"`
	Slow            []QueryRecord `json:"slow"`
}

// Snapshot exports the log's state: totals, threshold, and up to n
// records per ring, newest first. A nil log reports Enabled: false.
func (l *QueryLog) Snapshot(n int) QueryLogSnapshot {
	if l == nil {
		return QueryLogSnapshot{Recent: []QueryRecord{}, Slow: []QueryRecord{}}
	}
	s := QueryLogSnapshot{
		Enabled:         true,
		Total:           l.Total(),
		SlowTotal:       l.SlowTotal(),
		SlowThresholdNs: int64(l.SlowThreshold()),
		Recent:          l.Recent(n),
		Slow:            l.Slow(n),
	}
	// Empty rings serialize as [] rather than null.
	if s.Recent == nil {
		s.Recent = []QueryRecord{}
	}
	if s.Slow == nil {
		s.Slow = []QueryRecord{}
	}
	return s
}

// WriteJSON writes the snapshot of up to n records per ring as indented
// JSON.
func (l *QueryLog) WriteJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.Snapshot(n))
}
