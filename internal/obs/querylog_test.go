package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestQueryLogRingWraparound(t *testing.T) {
	l := NewQueryLog(4, 0)
	for i := 1; i <= 10; i++ {
		l.Record(QueryRecord{Query: "q", DurationNs: int64(i)})
	}
	if got := l.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	recent := l.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent retained %d records, want 4", len(recent))
	}
	// Newest first: IDs 10, 9, 8, 7.
	for i, want := range []uint64{10, 9, 8, 7} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d (order %v)", i, recent[i].ID, want, ids(recent))
		}
	}
	if got := l.Recent(2); len(got) != 2 || got[0].ID != 10 || got[1].ID != 9 {
		t.Fatalf("Recent(2) = %v, want IDs [10 9]", ids(got))
	}
}

func TestQueryLogSlowClassification(t *testing.T) {
	l := NewQueryLog(8, 5*time.Millisecond)
	if !l.IsSlow(5 * time.Millisecond) {
		t.Fatal("IsSlow(threshold) = false, want true (threshold is inclusive)")
	}
	if l.IsSlow(5*time.Millisecond - 1) {
		t.Fatal("IsSlow(threshold-1) = true, want false")
	}
	l.Record(QueryRecord{Query: "fast", DurationNs: int64(time.Millisecond)})
	l.Record(QueryRecord{Query: "slow", DurationNs: int64(10 * time.Millisecond)})
	if got := l.SlowTotal(); got != 1 {
		t.Fatalf("SlowTotal = %d, want 1", got)
	}
	slow := l.Slow(0)
	if len(slow) != 1 || slow[0].Query != "slow" || !slow[0].Slow {
		t.Fatalf("Slow(0) = %+v, want one record for %q with Slow set", slow, "slow")
	}
	// The fast record must not carry the flag.
	for _, r := range l.Recent(0) {
		if r.Query == "fast" && r.Slow {
			t.Fatal("fast record classified slow")
		}
	}

	// Threshold changes apply to later records only.
	l.SetSlowThreshold(0)
	if l.SlowThreshold() != 0 {
		t.Fatalf("SlowThreshold = %v after disabling, want 0", l.SlowThreshold())
	}
	l.Record(QueryRecord{Query: "slow2", DurationNs: int64(time.Hour)})
	if got := l.SlowTotal(); got != 1 {
		t.Fatalf("SlowTotal = %d after disabling threshold, want 1", got)
	}
}

func TestQueryLogRecordNormalization(t *testing.T) {
	l := NewQueryLog(2, time.Millisecond)
	before := time.Now()
	l.Record(QueryRecord{Query: "q", DurationNs: int64(2 * time.Millisecond)})
	rec := l.Recent(1)[0]
	if rec.ID != 1 {
		t.Fatalf("ID = %d, want 1", rec.ID)
	}
	if rec.Start.IsZero() {
		t.Fatal("zero Start was not back-derived")
	}
	if rec.Start.After(before) {
		t.Fatalf("back-derived Start %v is after record time %v", rec.Start, before)
	}
	// An explicit Start is preserved.
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l.Record(QueryRecord{Query: "q2", Start: at})
	if got := l.Recent(1)[0].Start; !got.Equal(at) {
		t.Fatalf("explicit Start = %v, want %v", got, at)
	}
}

func TestQueryLogNilSafe(t *testing.T) {
	var l *QueryLog
	l.Record(QueryRecord{Query: "q"})
	l.SetSlowThreshold(time.Second)
	if l.IsSlow(time.Hour) {
		t.Fatal("nil log classified a query slow")
	}
	if l.Total() != 0 || l.SlowTotal() != 0 || l.SlowThreshold() != 0 {
		t.Fatal("nil log reported nonzero state")
	}
	if l.Recent(5) != nil || l.Slow(5) != nil {
		t.Fatal("nil log returned records")
	}
	snap := l.Snapshot(5)
	if snap.Enabled {
		t.Fatal("nil log snapshot reports Enabled")
	}
	if snap.Recent == nil || snap.Slow == nil {
		t.Fatal("nil log snapshot rings must be empty slices, not nil")
	}
}

func TestQueryLogSnapshotJSON(t *testing.T) {
	l := NewQueryLog(4, time.Millisecond)
	l.Record(QueryRecord{
		Query:      "//note",
		DurationNs: int64(2 * time.Millisecond),
		Rows:       3,
		Strategy:   "forward",
		Stats:      QueryStatsRecord{RowsScanned: 7, PostingsRead: 2, EstimatedRows: -1},
		Trace:      "query //note 2ms",
	})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf, 10); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap QueryLogSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if !snap.Enabled || snap.Total != 1 || snap.SlowTotal != 1 {
		t.Fatalf("snapshot header = %+v, want enabled, total 1, slow 1", snap)
	}
	if snap.SlowThresholdNs != int64(time.Millisecond) {
		t.Fatalf("SlowThresholdNs = %d, want %d", snap.SlowThresholdNs, int64(time.Millisecond))
	}
	if len(snap.Recent) != 1 || len(snap.Slow) != 1 {
		t.Fatalf("snapshot rings = %d recent / %d slow, want 1 / 1", len(snap.Recent), len(snap.Slow))
	}
	r := snap.Recent[0]
	if r.Query != "//note" || r.Rows != 3 || r.Stats.RowsScanned != 7 || r.Stats.EstimatedRows != -1 {
		t.Fatalf("record did not survive the JSON round-trip: %+v", r)
	}
	if !r.Slow || r.Trace == "" {
		t.Fatalf("slow record lost its flag or trace: %+v", r)
	}

	// Empty rings serialize as arrays, not null.
	var raw map[string]json.RawMessage
	empty := NewQueryLog(2, 0)
	buf.Reset()
	if err := empty.WriteJSON(&buf, 10); err != nil {
		t.Fatalf("WriteJSON(empty): %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"recent", "slow"} {
		if string(raw[key]) == "null" {
			t.Fatalf("%s serialized as null, want []", key)
		}
	}
}

func TestQueryLogConcurrentRecord(t *testing.T) {
	l := NewQueryLog(16, time.Microsecond)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(QueryRecord{Query: "q", DurationNs: int64(time.Millisecond)})
				l.Recent(4)
				l.Snapshot(4)
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != workers*per {
		t.Fatalf("Total = %d, want %d", got, workers*per)
	}
	recent := l.Recent(0)
	if len(recent) != 16 {
		t.Fatalf("retained %d records, want 16", len(recent))
	}
	seen := map[uint64]bool{}
	for i, r := range recent {
		if seen[r.ID] {
			t.Fatalf("duplicate ID %d in ring", r.ID)
		}
		seen[r.ID] = true
		if i > 0 && recent[i-1].ID < r.ID {
			t.Fatalf("ring not newest-first: %v", ids(recent))
		}
	}
}

func ids(recs []QueryRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}
