package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// The live debug surface: an http.Handler serving metric snapshots as
// JSON, the Prometheus text exposition, the query log, and the stdlib's
// expvar and pprof endpoints.
//
//	/debug/metrics        registry snapshot (Snapshot JSON)
//	/debug/metrics/prom   Prometheus text-format exposition
//	/debug/queries        query log: recent + slow queries (?n= limit)
//	/debug/vars           expvar (cmdline, memstats, idm_metrics)
//	/debug/pprof/*        net/http/pprof profiles
//	/                     index page listing the endpoints

// expvarReg is the registry the expvar "idm_metrics" variable reads;
// published once, retargetable across Handler calls.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// Handler returns the debug mux over reg with no query log attached
// (/debug/queries then reports enabled: false). Use HandlerWith to
// attach one.
func Handler(reg *Registry) http.Handler { return HandlerWith(reg, nil) }

// HandlerWith returns the debug mux over reg and qlog. Snapshots are
// taken per request, so the surface always shows live values; qlog may
// be nil.
func HandlerWith(reg *Registry, qlog *QueryLog) http.Handler {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("idm_metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if v := r.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil && p > 0 {
				n = p
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		qlog.WriteJSON(w, n)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>iDM debug</h1><ul>
<li><a href="/debug/metrics">/debug/metrics</a> — observability registry snapshot</li>
<li><a href="/debug/metrics/prom">/debug/metrics/prom</a> — Prometheus text exposition</li>
<li><a href="/debug/queries">/debug/queries</a> — query log (recent + slow)</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar (memstats, cmdline)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul></body></html>`))
	})
	return mux
}

// Serve starts the debug surface on addr and returns the bound address
// (useful with ":0") and a shutdown function. Serving errors after a
// successful bind are dropped — the debug server must never take the
// process down.
func Serve(addr string, reg *Registry) (bound string, shutdown func(), err error) {
	return ServeWith(addr, reg, nil)
}

// ServeWith is Serve with a query log attached to /debug/queries.
func ServeWith(addr string, reg *Registry, qlog *QueryLog) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerWith(reg, qlog)}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
