package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	tr := NewTrace(`query "database"`)
	root := tr.Root()
	p := root.Start("parse")
	p.Finish()
	e := root.Start("eval")
	s1 := e.Start("step 1")
	s1.SetInt("matches", 42)
	s1.Finish()
	e.Finish()
	tr.Finish()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root children = %d, want 2", got)
	}
	if root.Find("step 1") == nil {
		t.Error("Find missed step 1")
	}
	if root.FindPrefix("ste") == nil {
		t.Error("FindPrefix missed step 1")
	}
	if root.Find("missing") != nil {
		t.Error("Find invented a span")
	}
	out := tr.Render()
	for _, want := range []string{`query "database"`, "├── parse", "└── eval", "└── step 1", "matches=42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if root.Duration() <= 0 {
		t.Error("finished root has no duration")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Render() != "" || tr.String() != "" {
		t.Error("nil trace rendered")
	}
	tr.Finish()
	s := tr.Root()
	if s != nil {
		t.Fatal("nil trace has a root")
	}
	c := s.Start("child")
	if c != nil {
		t.Fatal("nil span started a child")
	}
	c.Set("k", "v")
	c.Setf("k", "%d", 1)
	c.SetInt("k", 1)
	c.Finish()
	if c.Duration() != 0 || c.Name() != "" || c.Attrs() != nil || c.Children() != nil {
		t.Error("nil span not inert")
	}
	if c.Find("x") != nil || c.FindPrefix("x") != nil {
		t.Error("nil span found something")
	}
}

func TestSpanConcurrentWorkers(t *testing.T) {
	tr := NewTrace("q")
	step := tr.Root().Start("step")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := step.Start("worker")
			ws.SetInt("id", int64(w))
			ws.Finish()
		}(w)
	}
	wg.Wait()
	step.Finish()
	if got := len(step.Children()); got != 8 {
		t.Errorf("worker spans = %d, want 8", got)
	}
}

func TestUnfinishedSpanDuration(t *testing.T) {
	tr := NewTrace("q")
	time.Sleep(time.Millisecond)
	if tr.Root().Duration() < time.Millisecond {
		t.Error("unfinished span duration did not advance")
	}
}

func TestComponentLogger(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf, slog.LevelDebug)
	defer SetLogger(nil)
	Logger("rvm").Debug("sync done", "views", 3)
	out := buf.String()
	if !strings.Contains(out, "component=rvm") || !strings.Contains(out, "views=3") {
		t.Errorf("log output = %q", out)
	}
	// The discarding default swallows output and never panics.
	SetLogger(nil)
	Logger("cache").Info("hit")
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("idm_queries_total").Add(2)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	if code, body := get("/debug/metrics"); code != 200 || !strings.Contains(body, `"idm_queries_total": 2`) {
		t.Errorf("/debug/metrics: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: %d", code)
	} else if !strings.Contains(body, "idm_metrics") {
		t.Errorf("/debug/vars missing idm_metrics")
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/debug/metrics") {
		t.Errorf("index: %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: %d, want 404", code)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	addr, shutdown, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
