// Package obs is the observability substrate of the PDSMS: a
// lock-cheap metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms with snapshot export), span-based query tracing
// with an EXPLAIN-style tree rendering, component-scoped structured
// logging over log/slog, and an HTTP debug surface serving metric
// snapshots and net/http/pprof.
//
// The package is stdlib-only and designed for hot paths:
//
//   - every instrument method is nil-safe — a nil *Counter, *Gauge,
//     *Histogram, *Span or *Registry no-ops, so uninstrumented
//     components pay a single pointer test;
//   - a registry carries an atomic enabled flag; instruments created
//     from it share the flag, so SetEnabled(false) turns the whole
//     registry into near-free no-ops (one atomic load per call) without
//     tearing down any wiring;
//   - snapshots read each value with an atomic load, so scraping
//     concurrently with writers is torn-read-free.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments. The zero value is not usable; a nil
// *Registry is (every method no-ops or returns a nil instrument).
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled turns the registry's instruments on or off. Disabling does
// not reset recorded values.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether instruments record.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{on: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (ascending; nil applies
// LatencyBuckets). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(&r.enabled, bounds)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets returns the default histogram bounds: exponential
// latency buckets from 1µs to 10s, in nanoseconds.
func LatencyBuckets() []int64 {
	us, ms, s := int64(time.Microsecond), int64(time.Millisecond), int64(time.Second)
	return []int64{
		1 * us, 2 * us, 5 * us, 10 * us, 20 * us, 50 * us,
		100 * us, 200 * us, 500 * us, 1 * ms, 2 * ms, 5 * ms,
		10 * ms, 20 * ms, 50 * ms, 100 * ms, 200 * ms, 500 * ms,
		1 * s, 2 * s, 5 * s, 10 * s,
	}
}

// Histogram is a fixed-bucket histogram with atomic bucket counters.
// Values are int64 — nanoseconds for latency histograms, but any unit
// works (Mean/Quantile then report in that unit).
type Histogram struct {
	on      *atomic.Bool
	bounds  []int64 // ascending upper bounds; one overflow bucket past the end
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

func newHistogram(on *atomic.Bool, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets()
	}
	h := &Histogram{
		on:      on,
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(int64(1)<<62 - 1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.on.Load() {
		return
	}
	// The bound list is short (~22 entries); a linear scan beats a
	// binary search for typical sub-millisecond values.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || !h.on.Load() {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// snapshot reads the histogram with atomic loads.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		// Precomputed quantiles save scrapers from re-deriving them out
		// of the bucket counts (Quantile stays available for other qs).
		s.P50 = s.Quantile(0.50)
		s.P95 = s.Quantile(0.95)
		s.P99 = s.Quantile(0.99)
	}
	return s
}

// HistogramSnapshot is one histogram's exported state. Counts has one
// entry per bound plus a final overflow bucket. P50/P95/P99 are the
// interpolated quantile estimates at snapshot time (0 when empty).
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	P50    int64   `json:"p50"`
	P95    int64   `json:"p95"`
	P99    int64   `json:"p99"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Mean returns the mean recorded value (0 when empty).
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket. The overflow bucket
// reports Max.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(s.Bounds) {
				return s.Max
			}
			lo := int64(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += float64(c)
	}
	return s.Max
}

// Snapshot is a point-in-time export of a registry. Each individual
// value is read atomically; the snapshot as a whole is not a globally
// consistent cut (writers keep running), which is the usual scrape
// contract.
type Snapshot struct {
	Enabled    bool                         `json:"enabled"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports the registry's current state. A nil registry returns
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.Enabled = r.enabled.Load()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// CounterNames returns the snapshot's counter names in sorted order.
func (s Snapshot) CounterNames() []string {
	out := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GaugeNames returns the snapshot's gauge names in sorted order.
func (s Snapshot) GaugeNames() []string {
	out := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HistogramNames returns the snapshot's histogram names in sorted order.
func (s Snapshot) HistogramNames() []string {
	out := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
