package repl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
	"repro/internal/store"
)

// Fault-injection points the follower consults; the crash-a-follower
// matrix arms them to kill the follower at exact apply positions.
const (
	// FaultApply fires before a shipped record is appended to the
	// follower's local WAL: a crash at a record boundary.
	FaultApply = "repl/apply/append"
	// FaultApplyTorn fires after half of a shipped frame is written: a
	// crash mid-record, leaving a torn tail in the follower's WAL.
	FaultApplyTorn = "repl/apply/torn"
)

// ErrCrashed is returned by every follower operation after an injected
// crash or an unrecoverable I/O error, exactly like store.ErrCrashed.
var ErrCrashed = errors.New("repl: follower crashed")

// followWAL is the follower's local log of shipped frames (leader LSNs
// preserved); stateSnap is the installed full-state image, if any.
const (
	followWAL = "follow.wal"
	stateSnap = "state.snap"
)

// Applier receives each applied record (and full-state resets) — the
// hook through which the root-level Replica drives the rvm replay path.
// Durability happens before the Applier runs: a crash between the two
// is healed on restart by replaying the local WAL.
type Applier interface {
	Apply(rec store.Record) error
	Reset(st *store.State) error
}

// FollowerOptions tunes a Follower.
type FollowerOptions struct {
	// Faults is consulted at the Fault* points; nil injects nothing.
	Faults *fault.Injector
	// Applier receives applied records; nil keeps the follower a pure
	// durable tail (tests; the Replica wires one in).
	Applier Applier
}

// FollowerRecovery reports what OpenFollower reconstructed.
type FollowerRecovery struct {
	// SnapshotLSN is the applied LSN the installed state image carried
	// (0 = no image).
	SnapshotLSN uint64
	// WALRecords counts records replayed from the local WAL.
	WALRecords int
	// TornTail reports whether a torn final record was truncated away.
	TornTail bool
	// AppliedLSN is the recovered applied position.
	AppliedLSN uint64
}

// Follower is the receiving end of WAL shipping: it makes shipped
// records durable in its own directory, folds them into a shadow state
// (the convergence witness Digest hashes), and forwards them to the
// Applier. All methods are safe for concurrent use; Pull serializes
// against itself via the mutex.
type Follower struct {
	dir  string
	opts FollowerOptions

	mu        sync.Mutex
	dead      error
	state     *store.State
	applied   uint64
	leaderLSN uint64
	wal       *os.File
}

// OpenFollower opens (creating if needed) the follower directory and
// recovers its position: the installed state image (if any) is loaded,
// then the local WAL is replayed in file order, skipping records at or
// below the image's LSN and truncating a torn tail — the same
// last-good-prefix contract the leader's store recovery honours.
func OpenFollower(dir string, opts FollowerOptions) (*Follower, FollowerRecovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, FollowerRecovery{}, err
	}
	f := &Follower{dir: dir, opts: opts, state: store.NewState()}
	var info FollowerRecovery

	if img, err := os.ReadFile(filepath.Join(dir, stateSnap)); err == nil {
		st, nextLSN, derr := store.DecodeSnapshot(img)
		if derr != nil {
			// The image is written atomically (tmp+rename), so damage
			// means media corruption; the WAL alone cannot reconstruct a
			// compacted history, so refuse rather than silently diverge.
			return nil, info, fmt.Errorf("repl: follower state image: %w", derr)
		}
		f.state = st
		f.applied = nextLSN - 1
		info.SnapshotLSN = f.applied
	} else if !os.IsNotExist(err) {
		return nil, info, err
	}

	walPath := filepath.Join(dir, followWAL)
	if b, err := os.ReadFile(walPath); err == nil {
		res, rerr := store.ReplayBytes(b, func(lsn uint64, rec store.Record) error {
			if lsn <= f.applied {
				return nil // pre-image records left behind by an interrupted install
			}
			f.state.Apply(rec)
			f.applied = lsn
			info.WALRecords++
			return nil
		})
		if rerr != nil {
			return nil, info, rerr
		}
		if res.Warning != "" {
			info.TornTail = true
			if err := os.Truncate(walPath, int64(res.GoodOffset)); err != nil {
				return nil, info, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, info, err
	}

	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, info, err
	}
	f.wal = wal
	info.AppliedLSN = f.applied
	return f, info, nil
}

// SetApplier wires the Applier in after recovery — the caller rebuilds
// its replay target (catalog, indexes) from State() first, then attaches
// it here before the first Pull.
func (f *Follower) SetApplier(a Applier) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opts.Applier = a
}

// crash marks the follower dead and returns the wrapped cause.
func (f *Follower) crash(cause error) error {
	f.dead = fmt.Errorf("%w: %w", ErrCrashed, cause)
	return f.dead
}

// Pull ships one batch from the transport and applies it. A batch that
// fails validation — torn frames, wrong count, non-monotonic LSNs, a
// gap above the applied position — is rejected wholesale (ErrBadBatch)
// before anything is written; re-pulling retries. Overlapping batches
// (FromLSN below the applied position) are legal: the already-applied
// prefix is re-applied through the Applier, exercising its idempotency,
// without being re-logged. Returns the number of records newly applied.
func (f *Follower) Pull(t Transport) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead != nil {
		return 0, f.dead
	}
	b, err := t.Ship(f.applied)
	if err != nil {
		return 0, err
	}
	if b.Snapshot != nil {
		if err := f.installSnapshotLocked(b); err != nil {
			return 0, err
		}
		f.leaderLSN = b.LeaderLSN
		return 1, nil
	}
	if b.FromLSN > f.applied {
		return 0, fmt.Errorf("%w: batch starts at %d, follower applied %d", ErrBadBatch, b.FromLSN, f.applied)
	}
	// Decode and validate the whole batch before touching anything.
	type shipped struct {
		lsn uint64
		rec store.Record
	}
	var recs []shipped
	res, err := store.ReplayBytes(b.Frames, func(lsn uint64, rec store.Record) error {
		recs = append(recs, shipped{lsn: lsn, rec: rec})
		return nil
	})
	if err != nil {
		return 0, err
	}
	if res.Warning != "" {
		return 0, fmt.Errorf("%w: %s", ErrBadBatch, res.Warning)
	}
	if uint64(len(recs)) != b.Count {
		return 0, fmt.Errorf("%w: header says %d records, decoded %d", ErrBadBatch, b.Count, len(recs))
	}
	prev := b.FromLSN
	for _, r := range recs {
		if r.lsn <= prev {
			return 0, fmt.Errorf("%w: LSN %d after %d (not strictly increasing)", ErrBadBatch, r.lsn, prev)
		}
		prev = r.lsn
	}
	if len(recs) > 0 && recs[len(recs)-1].lsn != b.ToLSN {
		return 0, fmt.Errorf("%w: last LSN %d, header says %d", ErrBadBatch, recs[len(recs)-1].lsn, b.ToLSN)
	}

	applied := 0
	for _, r := range recs {
		if r.lsn > f.applied {
			// Durability first: log the frame locally, then fold it in.
			frame, err := store.AppendFrame(nil, r.lsn, r.rec)
			if err != nil {
				return applied, err
			}
			if err := f.opts.Faults.Fail(FaultApply); err != nil {
				return applied, f.crash(err)
			}
			if err := f.opts.Faults.Fail(FaultApplyTorn); err != nil {
				// A crash mid-write: half the frame reaches the disk.
				f.wal.Write(frame[:len(frame)/2])
				f.wal.Sync()
				return applied, f.crash(err)
			}
			if _, err := f.wal.Write(frame); err != nil {
				return applied, f.crash(err)
			}
			f.state.Apply(r.rec)
			f.applied = r.lsn
			applied++
		}
		// Records at or below the applied position (an overlapping
		// re-ship) still flow through the Applier: its apply path is
		// idempotent and this is where that contract is exercised.
		if f.opts.Applier != nil {
			if err := f.opts.Applier.Apply(r.rec); err != nil {
				return applied, err
			}
		}
	}
	if applied > 0 {
		if err := f.wal.Sync(); err != nil {
			return applied, f.crash(err)
		}
	}
	f.leaderLSN = b.LeaderLSN
	return applied, nil
}

// installSnapshotLocked installs a full-state image: tmp+rename the
// image, truncate the local WAL, swap the shadow state, reset the
// Applier. A crash between rename and truncate is safe — recovery skips
// WAL records at or below the image's LSN.
func (f *Follower) installSnapshotLocked(b *Batch) error {
	st, nextLSN, err := store.DecodeSnapshot(b.Snapshot)
	if err != nil {
		return fmt.Errorf("%w: snapshot: %v", ErrBadBatch, err)
	}
	tmp := filepath.Join(f.dir, ".state.tmp")
	if err := os.WriteFile(tmp, b.Snapshot, 0o644); err != nil {
		return f.crash(err)
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, stateSnap)); err != nil {
		os.Remove(tmp)
		return f.crash(err)
	}
	if err := f.wal.Truncate(0); err != nil {
		return f.crash(err)
	}
	if _, err := f.wal.Seek(0, 0); err != nil {
		return f.crash(err)
	}
	f.state = st
	f.applied = nextLSN - 1
	if f.opts.Applier != nil {
		if err := f.opts.Applier.Reset(st); err != nil {
			return err
		}
	}
	return nil
}

// AppliedLSN returns the follower's durable applied position.
func (f *Follower) AppliedLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// LeaderLSN returns the leader position last advertised to this
// follower (0 before the first pull).
func (f *Follower) LeaderLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leaderLSN
}

// Lag returns how many LSNs the follower trails the last advertised
// leader position — the staleness witness the federation surfaces.
func (f *Follower) Lag() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.leaderLSN <= f.applied {
		return 0
	}
	return f.leaderLSN - f.applied
}

// Digest returns the stable digest of the follower's shadow state; it
// equals the leader's store Digest exactly when the follower has
// applied the leader's whole log.
func (f *Follower) Digest() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state.Digest()
}

// State returns the follower's shadow state, from which the root-level
// Replica rebuilds catalog and indexes after recovery. Callers must not
// mutate it and must not race it against Pull.
func (f *Follower) State() *store.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// Close closes the local WAL. The follower is unusable afterwards.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead == nil {
		f.dead = errors.New("repl: follower closed")
	}
	if f.wal == nil {
		return nil
	}
	err := f.wal.Close()
	f.wal = nil
	return err
}
