package repl

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/store"
)

func upsert(oid catalog.OID, source, uri string) store.Record {
	return store.Record{Kind: store.KindUpsert, View: &store.ViewRecord{Entry: catalog.Entry{
		OID: oid, Name: filepath.Base(uri), Class: "file", Source: source,
		URI: uri, ContentSize: -1,
	}}}
}

// newLeaderStore opens a store, appends n records across two sources
// (with an edge commit and a removal mixed in), and returns it with its
// leader.
func newLeaderStore(t *testing.T, n int) (*store.Store, *Leader) {
	t.Helper()
	st, _, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	seedLeader(t, st, n, 0)
	return st, NewLeader(st)
}

// seedLeader appends n records, numbering OIDs from base+1.
func seedLeader(t *testing.T, st *store.Store, n, base int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		oid := catalog.OID(base + i)
		var rec store.Record
		src := "fs"
		switch {
		case i%7 == 0:
			rec = store.Record{Kind: store.KindEdges, Source: "fs",
				Edges: []store.EdgeList{{Parent: oid - 1, Children: []catalog.OID{oid - 2}}}}
		case i%5 == 0:
			rec = store.Record{Kind: store.KindRemove, OID: oid - 1}
		case i%2 == 0:
			src = "mail"
			rec = upsert(oid, "mail", fmt.Sprintf("/inbox/%d", i))
		default:
			rec = upsert(oid, "fs", fmt.Sprintf("/f/%d", i))
		}
		if err := st.Append(src, rec); err != nil {
			t.Fatal(err)
		}
	}
}

func openTestFollower(t *testing.T, dir string, opts FollowerOptions) (*Follower, FollowerRecovery) {
	t.Helper()
	f, info, err := OpenFollower(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, info
}

// catchUp pulls until the follower stops advancing.
func catchUp(t *testing.T, f *Follower, tr Transport) int {
	t.Helper()
	pulls := 0
	for {
		n, err := f.Pull(tr)
		if err != nil {
			t.Fatalf("pull %d: %v", pulls, err)
		}
		pulls++
		if n == 0 {
			return pulls
		}
	}
}

func TestFollowerConverges(t *testing.T) {
	st, leader := newLeaderStore(t, 20)
	f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})
	catchUp(t, f, leader)
	if f.Digest() != st.Digest() {
		t.Fatal("follower digest != leader digest after catch-up")
	}
	if f.AppliedLSN() != leader.LSN() {
		t.Fatalf("applied %d, leader at %d", f.AppliedLSN(), leader.LSN())
	}
	if f.Lag() != 0 {
		t.Fatalf("lag %d after catch-up", f.Lag())
	}
}

func TestFollowerMultiBatchCatchUp(t *testing.T) {
	st, leader := newLeaderStore(t, 20)
	leader.SetMaxBatch(3)
	f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})

	// The first capped pull leaves the follower lagging, and the lag is
	// advertised — the staleness witness the federation surfaces.
	if _, err := f.Pull(leader); err != nil {
		t.Fatal(err)
	}
	if f.Lag() == 0 {
		t.Fatal("capped pull reported no lag")
	}
	pulls := catchUp(t, f, leader)
	if pulls < 5 {
		t.Fatalf("capped catch-up took only %d pulls", pulls)
	}
	if f.Digest() != st.Digest() {
		t.Fatal("multi-batch catch-up diverged")
	}
}

func TestSnapshotFallback(t *testing.T) {
	st, leader := newLeaderStore(t, 12)
	// Compaction deletes the WAL a fresh follower would need: the next
	// ship must fall back to a full-state image.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	seedLeader(t, st, 6, 100)

	f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})
	b, err := leader.Ship(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot == nil {
		t.Fatal("compacted leader shipped frames, want full-state image")
	}
	catchUp(t, f, leader)
	if f.Digest() != st.Digest() {
		t.Fatal("snapshot fallback diverged")
	}
	// Post-install shipping is incremental again.
	seedLeader(t, st, 3, 200)
	b, err = leader.Ship(f.AppliedLSN())
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot != nil {
		t.Fatal("caught-up follower was shipped a snapshot")
	}
	catchUp(t, f, leader)
	if f.Digest() != st.Digest() {
		t.Fatal("post-install incremental diverged")
	}
}

func TestFollowerRestartResumes(t *testing.T) {
	st, leader := newLeaderStore(t, 20)
	leader.SetMaxBatch(8)
	dir := t.TempDir()
	f, err := func() (*Follower, error) {
		f, _, err := OpenFollower(dir, FollowerOptions{})
		return f, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pull(leader); err != nil {
		t.Fatal(err)
	}
	mid := f.AppliedLSN()
	if mid == 0 || mid >= leader.LSN() {
		t.Fatalf("partial pull applied %d of %d", mid, leader.LSN())
	}
	f.Close()

	// Reopen: the local WAL replays to the same position, and pulling
	// resumes from there rather than from zero.
	f2, info := openTestFollower(t, dir, FollowerOptions{})
	if info.AppliedLSN != mid {
		t.Fatalf("recovered applied %d, want %d", info.AppliedLSN, mid)
	}
	if info.WALRecords == 0 {
		t.Fatal("recovery replayed no local WAL records")
	}
	catchUp(t, f2, leader)
	if f2.Digest() != st.Digest() {
		t.Fatal("restart + catch-up diverged")
	}

	// Restart after a snapshot install recovers from the image.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	seedLeader(t, st, 4, 300)
	dir3 := t.TempDir()
	f3, _ := openTestFollower(t, dir3, FollowerOptions{})
	catchUp(t, f3, leader)
	f3.Close()
	f4, info4 := openTestFollower(t, dir3, FollowerOptions{})
	if info4.SnapshotLSN == 0 {
		t.Fatal("no state image recovered after snapshot install")
	}
	if f4.Digest() != st.Digest() {
		t.Fatal("image recovery diverged")
	}
}

// badTransport returns a fixed batch.
type badTransport struct{ b *Batch }

func (bt badTransport) Ship(fromLSN uint64) (*Batch, error) { return bt.b, nil }

func TestFollowerRejectsInvalidBatches(t *testing.T) {
	st, leader := newLeaderStore(t, 10)
	good, err := leader.Ship(0)
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBounds(good.Frames)
	if len(bounds) < 3 {
		t.Fatalf("fixture too small: %d frames", len(bounds))
	}
	clone := func() *Batch { b := *good; return &b }

	cases := map[string]*Batch{}
	// Wrong count: header disagrees with the decoded frames.
	b := clone()
	b.Count++
	cases["count"] = b
	// Dropped middle frame: count mismatch again, detected wholesale.
	b = clone()
	i := bounds[len(bounds)/2]
	b.Frames = append(append([]byte(nil), good.Frames[:i[0]]...), good.Frames[i[1]:]...)
	cases["drop"] = b
	// Reordered frames: LSNs no longer strictly increasing.
	b = clone()
	a, z := bounds[0], bounds[1]
	swapped := append([]byte(nil), good.Frames[z[0]:z[1]]...)
	swapped = append(swapped, good.Frames[a[0]:a[1]]...)
	b.Frames = append(swapped, good.Frames[z[1]:]...)
	cases["reorder"] = b
	// Torn tail: the final frame is cut mid-record.
	b = clone()
	last := bounds[len(bounds)-1]
	b.Frames = append([]byte(nil), good.Frames[:last[0]+(last[1]-last[0])/2]...)
	cases["torn"] = b
	// Wrong ToLSN header.
	b = clone()
	b.ToLSN += 5
	cases["tolsn"] = b
	// Gap: the batch starts above the follower's applied position.
	b = clone()
	b.FromLSN = 4
	cases["gap"] = b
	// Torn snapshot image: fails to decode, rejected the same way.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snap, err := leader.Ship(0)
	if err != nil || snap.Snapshot == nil {
		t.Fatalf("no snapshot fallback after compaction: %v", err)
	}
	b = &Batch{}
	*b = *snap
	b.Snapshot = b.Snapshot[:len(b.Snapshot)/2]
	cases["snapshot"] = b

	for name, bad := range cases {
		f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})
		n, err := f.Pull(badTransport{b: bad})
		if !errors.Is(err, ErrBadBatch) {
			t.Errorf("%s: err = %v, want ErrBadBatch", name, err)
		}
		if n != 0 || f.AppliedLSN() != 0 {
			t.Errorf("%s: rejected batch applied %d records (LSN %d)", name, n, f.AppliedLSN())
		}
		// Rejection is not a crash: the follower heals by re-pulling from
		// a clean transport.
		catchUp(t, f, leader)
		if f.Digest() != st.Digest() {
			t.Errorf("%s: recovery pull diverged", name)
		}
	}
}

func TestOverlappingBatchIdempotent(t *testing.T) {
	st, leader := newLeaderStore(t, 10)
	f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})
	catchUp(t, f, leader)

	// Re-ship everything from zero: a legal overlapping batch. Nothing
	// is newly applied, nothing is re-logged, and the digest holds.
	full, err := leader.Ship(0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Pull(badTransport{b: full})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("overlap re-applied %d records as new", n)
	}
	if f.Digest() != st.Digest() {
		t.Fatal("overlap re-apply diverged")
	}
}

func TestWireTransportRoundTrip(t *testing.T) {
	st, leader := newLeaderStore(t, 15)
	wire := &WireTransport{Inner: leader}
	f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})
	catchUp(t, f, wire)
	if f.Digest() != st.Digest() {
		t.Fatal("wire round-trip diverged")
	}
	// Snapshot shipments survive the wire too.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	f2, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})
	catchUp(t, f2, wire)
	if f2.Digest() != st.Digest() {
		t.Fatal("wire snapshot round-trip diverged")
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	_, leader := newLeaderStore(t, 5)
	good, err := leader.Ship(0)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeBatch(good)
	rt, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if rt.FromLSN != good.FromLSN || rt.ToLSN != good.ToLSN || rt.Count != good.Count ||
		rt.LeaderLSN != good.LeaderLSN || len(rt.Frames) != len(good.Frames) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", rt, good)
	}

	bad := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC!\x00"),
		append([]byte(batchMagic), 9), // unknown kind
		append([]byte(batchMagic), 0), // missing varints
		enc[:len(enc)-1],              // truncated payload: length header disagrees
		append(append([]byte{}, enc...), 1, 2, 3), // trailing junk
	}
	for i, data := range bad {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("bad input %d decoded without error", i)
		}
	}
}

func TestChaosTransportSeeded(t *testing.T) {
	st, leader := newLeaderStore(t, 30)
	leader.SetMaxBatch(4)
	inj := fault.New(7)
	for _, p := range []string{FaultShipDrop, FaultShipDup, FaultShipReorder, FaultShipTorn} {
		inj.Add(fault.Rule{Point: p, Kind: fault.Error, P: 0.3})
	}
	chaos := &ChaosTransport{Inner: &WireTransport{Inner: leader}, Faults: inj}
	f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})
	rejected := 0
	for i := 0; i < 500; i++ {
		n, err := f.Pull(chaos)
		if errors.Is(err, ErrBadBatch) {
			rejected++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 && f.Lag() == 0 {
			break
		}
	}
	if f.Digest() != st.Digest() {
		t.Fatal("chaos catch-up diverged")
	}
	if inj.FiredTotal() == 0 {
		t.Fatal("chaos injected nothing")
	}
	if rejected == 0 {
		t.Fatal("no mutated batch was rejected — chaos not exercised")
	}
}

// TestConcurrentShipStress races live appends and checkpoints on the
// leader store against a tailing follower on the same directory; run
// under -race (scripts/check.sh does) it proves TailSince's locking.
func TestConcurrentShipStress(t *testing.T) {
	st, _, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	leader := NewLeader(st)
	leader.SetMaxBatch(5)
	f, _ := openTestFollower(t, t.TempDir(), FollowerOptions{})

	const writers, perWriter = 4, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf("src%d", w)
			for i := 0; i < perWriter; i++ {
				oid := catalog.OID(w*perWriter + i + 1)
				if err := st.Append(src, upsert(oid, src, fmt.Sprintf("/%s/%d", src, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Checkpoints race the appends and the tailing follower.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := st.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// The follower tails continuously while the log grows and compacts.
	var tailErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := f.Pull(leader); err != nil {
				tailErr = err
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	if tailErr != nil {
		t.Fatal(tailErr)
	}
	catchUp(t, f, leader)
	if f.Digest() != st.Digest() {
		t.Fatal("concurrent stress diverged")
	}
	if f.AppliedLSN() != st.NextLSN()-1 {
		t.Fatalf("applied %d, leader next %d", f.AppliedLSN(), st.NextLSN())
	}
}
