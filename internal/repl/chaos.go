package repl

import (
	"encoding/binary"

	"repro/internal/fault"
)

// Chaos fault points: armed with Error rules (fault.Rule), each decides
// per shipment whether the ChaosTransport mutates the batch in flight.
// drop/reorder/torn produce invalid batches the follower must reject
// wholesale; dup produces an honest overlapping batch the follower must
// re-apply idempotently. With a seeded injector the whole chaos
// schedule replays deterministically.
const (
	// FaultShipDrop removes one frame from the middle of the batch (the
	// header count then disagrees with the decoded count).
	FaultShipDrop = "repl/ship/drop"
	// FaultShipDup re-ships from half the requested position — a valid
	// overlapping batch whose already-applied prefix exercises the rvm
	// apply path's idempotency.
	FaultShipDup = "repl/ship/dup"
	// FaultShipReorder swaps two adjacent frames (LSN monotonicity then
	// fails).
	FaultShipReorder = "repl/ship/reorder"
	// FaultShipTorn truncates the batch mid-frame — or, for a snapshot
	// shipment, truncates the image so it no longer decodes.
	FaultShipTorn = "repl/ship/torn"
)

// ChaosTransport wraps a Transport and mutates shipments according to
// the armed fault rules — the replication equivalent of a flaky,
// reordering, connection-dropping network path.
type ChaosTransport struct {
	Inner  Transport
	Faults *fault.Injector
}

// Ship pulls from the inner transport, possibly mutating the request
// position (dup) or the returned batch (drop/reorder/torn).
func (c *ChaosTransport) Ship(fromLSN uint64) (*Batch, error) {
	if c.Faults.Hit(FaultShipDup) && fromLSN > 0 {
		fromLSN /= 2
	}
	b, err := c.Inner.Ship(fromLSN)
	if err != nil || b == nil {
		return b, err
	}
	if b.Snapshot != nil {
		if c.Faults.Hit(FaultShipTorn) && len(b.Snapshot) > 1 {
			b.Snapshot = b.Snapshot[:len(b.Snapshot)/2]
		}
		return b, nil
	}
	bounds := frameBounds(b.Frames)
	if c.Faults.Hit(FaultShipDrop) && len(bounds) > 0 {
		i := len(bounds) / 2
		b.Frames = append(append([]byte(nil), b.Frames[:bounds[i][0]]...), b.Frames[bounds[i][1]:]...)
		bounds = frameBounds(b.Frames)
	}
	if c.Faults.Hit(FaultShipReorder) && len(bounds) >= 2 {
		i := len(bounds) / 2
		a, z := bounds[i-1], bounds[i]
		swapped := append([]byte(nil), b.Frames[:a[0]]...)
		swapped = append(swapped, b.Frames[z[0]:z[1]]...)
		swapped = append(swapped, b.Frames[a[0]:a[1]]...)
		b.Frames = append(swapped, b.Frames[z[1]:]...)
	}
	if c.Faults.Hit(FaultShipTorn) && len(bounds) > 0 {
		last := bounds[len(bounds)-1]
		cut := last[0] + (last[1]-last[0])/2
		b.Frames = b.Frames[:cut]
	}
	return b, nil
}

// frameBounds returns the [start, end) byte range of every complete
// frame in a WAL byte run, walking the length headers.
func frameBounds(frames []byte) [][2]int {
	var out [][2]int
	off := 0
	for len(frames)-off >= 8 {
		plen := int(binary.LittleEndian.Uint32(frames[off:]))
		if plen <= 0 || plen > len(frames)-off-8 {
			break
		}
		out = append(out, [2]int{off, off + 8 + plen})
		off += 8 + plen
	}
	return out
}
