// Package repl is the WAL-shipping replication layer: the scale-out
// story for the "networks of P2P iMeMex instances" the iDM paper's
// conclusion plans. A Leader exposes its durable store's per-source WAL
// segments (internal/store) as LSN-ordered batches; a Follower tails
// them over a Transport, makes each record durable in its own directory,
// folds it into a shadow state, and hands it to an Applier (the rvm
// replay path) — so a caught-up follower answers queries exactly like
// its leader and serves as a read-only Peer in a Federation.
//
// The shipping format IS the WAL format: a batch's Frames field is a
// byte-concatenation of the leader's checksummed
// [len][crc32c][uvarint-LSN + record] frames, decoded with
// store.ReplayBytes. When the leader has compacted history the follower
// needs (a snapshot deleted the WAL below the follower's applied LSN),
// Ship falls back to a full-state transfer in the snapshot file format.
// See docs/REPLICATION.md.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/store"
)

// Batch is one shipment from leader to follower: either an incremental
// run of WAL frames or a full-state snapshot image.
type Batch struct {
	// FromLSN echoes the follower's applied LSN the shipment extends;
	// every frame carries an LSN strictly greater than it.
	FromLSN uint64
	// ToLSN is the highest LSN in Frames (== FromLSN when empty).
	ToLSN uint64
	// Count is the number of frames the leader shipped; the follower
	// rejects a batch wholesale when the decoded count disagrees.
	Count uint64
	// Frames holds WAL-framed records in ascending LSN order (nil for a
	// snapshot shipment).
	Frames []byte
	// Snapshot, when non-nil, is a full-state image in the snapshot file
	// format (store.EncodeState); the follower installs it in place of
	// incremental apply.
	Snapshot []byte
	// SnapshotLSN is the applied LSN a follower holds after installing
	// Snapshot.
	SnapshotLSN uint64
	// LeaderLSN advertises the leader's highest assigned LSN at ship
	// time — the follower's lag witness (LeaderLSN - applied).
	LeaderLSN uint64
}

// Transport moves batches from a leader to a follower. The in-process
// implementations (*Leader directly, WireTransport, ChaosTransport) keep
// the tests hermetic; a network transport only has to carry
// EncodeBatch's bytes.
type Transport interface {
	// Ship returns the records above fromLSN (or a full-state fallback).
	Ship(fromLSN uint64) (*Batch, error)
}

// LogSource is the slice of the storage engine a leader ships from —
// the LSN-ordered tail plus the full-state fallback. Both storage
// backends (the WAL store and the compacted segment store) satisfy it
// via storage.Engine; repl depends only on this surface, never on a
// concrete engine.
type LogSource interface {
	// TailSince returns every record with LSN > fromLSN in global-LSN
	// order plus the next LSN; ok is false when compaction dropped the
	// requested history and the shipper must fall back to CloneState.
	TailSince(fromLSN uint64) ([]store.TailRecord, uint64, bool, error)
	// CloneState returns a consistent full-state image and the next LSN.
	CloneState() (*store.State, uint64)
	// NextLSN returns the LSN the next appended record will receive.
	NextLSN() uint64
}

// Leader ships a durable engine's log. It implements Transport.
type Leader struct {
	st       LogSource
	maxBatch int
}

// NewLeader returns a leader over the log source.
func NewLeader(st LogSource) *Leader { return &Leader{st: st} }

// SetMaxBatch caps the records per shipped batch (0 = unlimited); small
// caps let tests exercise multi-batch catch-up.
func (l *Leader) SetMaxBatch(n int) { l.maxBatch = n }

// LSN returns the leader's highest assigned LSN.
func (l *Leader) LSN() uint64 { return l.st.NextLSN() - 1 }

// Ship returns every WAL record above fromLSN in global-LSN order,
// re-framed in the on-disk format. When the WAL no longer covers
// fromLSN (a snapshot compacted it away), it ships a full-state image
// instead. Gaps above fromLSN are legal — DropSource deletes a
// segment, and the drop record's higher LSN supersedes everything the
// deleted segment held — which is why the follower validates by count
// and monotonicity, not density.
func (l *Leader) Ship(fromLSN uint64) (*Batch, error) {
	recs, next, ok, err := l.st.TailSince(fromLSN)
	if err != nil {
		return nil, err
	}
	leaderLSN := next - 1
	if !ok {
		st, nextLSN := l.st.CloneState()
		img, err := store.EncodeState(st, nextLSN)
		if err != nil {
			return nil, err
		}
		return &Batch{
			FromLSN:     fromLSN,
			ToLSN:       nextLSN - 1,
			Snapshot:    img,
			SnapshotLSN: nextLSN - 1,
			LeaderLSN:   leaderLSN,
		}, nil
	}
	if l.maxBatch > 0 && len(recs) > l.maxBatch {
		recs = recs[:l.maxBatch]
	}
	b := &Batch{FromLSN: fromLSN, ToLSN: fromLSN, LeaderLSN: leaderLSN}
	for _, tr := range recs {
		b.Frames, err = store.AppendFrame(b.Frames, tr.LSN, tr.Rec)
		if err != nil {
			return nil, err
		}
		b.ToLSN = tr.LSN
		b.Count++
	}
	return b, nil
}

// batchMagic heads every encoded batch on the wire.
const batchMagic = "IDMSHIP1\n"

// MaxBatchBytes bounds a decoded batch payload — same spirit as
// store.MaxRecordBytes, so a corrupt length header cannot ask for an
// absurd allocation.
const MaxBatchBytes = 256 << 20

const (
	batchKindFrames   = 0
	batchKindSnapshot = 1
)

// EncodeBatch renders a batch in the wire format: magic, a kind byte,
// the five header uvarints, then the length-prefixed payload (Frames or
// Snapshot). The payload bytes are already self-checking — WAL frames
// carry per-frame CRCs and snapshot images their own framing — so the
// envelope adds no second checksum.
func EncodeBatch(b *Batch) []byte {
	out := []byte(batchMagic)
	kind := byte(batchKindFrames)
	payload := b.Frames
	if b.Snapshot != nil {
		kind = batchKindSnapshot
		payload = b.Snapshot
	}
	out = append(out, kind)
	out = binary.AppendUvarint(out, b.FromLSN)
	out = binary.AppendUvarint(out, b.ToLSN)
	out = binary.AppendUvarint(out, b.Count)
	out = binary.AppendUvarint(out, b.SnapshotLSN)
	out = binary.AppendUvarint(out, b.LeaderLSN)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

// DecodeBatch parses a wire batch. It is bounds-checked and never
// panics on arbitrary input (FuzzShipDecode pins this); payload
// validation — frame CRCs, LSN order, counts — is the follower's job.
func DecodeBatch(data []byte) (*Batch, error) {
	if len(data) < len(batchMagic)+1 {
		return nil, fmt.Errorf("repl: batch: truncated header")
	}
	if string(data[:len(batchMagic)]) != batchMagic {
		return nil, fmt.Errorf("repl: batch: bad magic")
	}
	off := len(batchMagic)
	kind := data[off]
	off++
	if kind != batchKindFrames && kind != batchKindSnapshot {
		return nil, fmt.Errorf("repl: batch: unknown kind %d", kind)
	}
	b := &Batch{}
	var plen uint64
	for _, dst := range []*uint64{&b.FromLSN, &b.ToLSN, &b.Count, &b.SnapshotLSN, &b.LeaderLSN, &plen} {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("repl: batch: bad varint at offset %d", off)
		}
		*dst = v
		off += n
	}
	if plen > MaxBatchBytes || plen != uint64(len(data)-off) {
		return nil, fmt.Errorf("repl: batch: payload length %d, %d bytes remain", plen, len(data)-off)
	}
	payload := append([]byte(nil), data[off:]...)
	if kind == batchKindSnapshot {
		b.Snapshot = payload
	} else {
		b.Frames = payload
	}
	return b, nil
}

// WireTransport round-trips every shipment through the wire encoding —
// in-process tests run the exact bytes a network transport would carry.
type WireTransport struct {
	Inner Transport
}

// Ship encodes and re-decodes the inner shipment.
func (w *WireTransport) Ship(fromLSN uint64) (*Batch, error) {
	b, err := w.Inner.Ship(fromLSN)
	if err != nil {
		return nil, err
	}
	return DecodeBatch(EncodeBatch(b))
}

// ErrBadBatch marks a shipment the follower rejected wholesale —
// nothing from it was applied, and re-pulling is the remedy. The chaos
// suite drives mutated batches into this path and proves convergence
// via retry.
var ErrBadBatch = errors.New("repl: bad batch")
