package repl

import (
	"bytes"
	"testing"

	"repro/internal/store"
)

// fuzzSeedBatches encodes representative shipments (incremental frames,
// a snapshot fallback, an empty batch) for the seed corpus.
func fuzzSeedBatches(tb testing.TB) [][]byte {
	tb.Helper()
	var frames []byte
	var err error
	for i, rec := range []store.Record{
		upsert(1, "fs", "/a"),
		upsert(2, "fs", "/b"),
		{Kind: store.KindRemove, OID: 1},
	} {
		if frames, err = store.AppendFrame(frames, uint64(i+1), rec); err != nil {
			tb.Fatal(err)
		}
	}
	st := store.NewState()
	st.Apply(upsert(1, "fs", "/a"))
	img, err := store.EncodeState(st, 2)
	if err != nil {
		tb.Fatal(err)
	}
	return [][]byte{
		EncodeBatch(&Batch{FromLSN: 0, ToLSN: 3, Count: 3, Frames: frames, LeaderLSN: 3}),
		EncodeBatch(&Batch{FromLSN: 0, ToLSN: 1, Snapshot: img, SnapshotLSN: 1, LeaderLSN: 1}),
		EncodeBatch(&Batch{}),
	}
}

// FuzzShipDecode pins the wire contract on arbitrary bytes: DecodeBatch
// never panics and never over-allocates, a decoded batch re-encodes to
// the same bytes, and the follower-side payload validation (frame
// replay, snapshot decode) never panics either — the full path a batch
// from a hostile network peer would travel.
func FuzzShipDecode(f *testing.F) {
	for _, seed := range fuzzSeedBatches(f) {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/3] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte(batchMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Accepted envelopes must survive a lossless round-trip. (Exact
		// byte equality with the input can't hold — uvarints admit
		// non-minimal encodings — but re-encoding a decoded batch is
		// canonical and must be a fixed point.)
		rt, err := DecodeBatch(EncodeBatch(b))
		if err != nil {
			t.Fatalf("re-decode failed for %x: %v", data, err)
		}
		if rt.FromLSN != b.FromLSN || rt.ToLSN != b.ToLSN || rt.Count != b.Count ||
			rt.SnapshotLSN != b.SnapshotLSN || rt.LeaderLSN != b.LeaderLSN ||
			!bytes.Equal(rt.Frames, b.Frames) || !bytes.Equal(rt.Snapshot, b.Snapshot) {
			t.Fatalf("round-trip diverges for %x", data)
		}
		if b.Snapshot != nil {
			if _, _, err := store.DecodeSnapshot(b.Snapshot); err != nil {
				return // payload rejection is the follower's job
			}
			return
		}
		// The follower replays frame payloads; that walk must be total.
		_, _ = store.ReplayBytes(b.Frames, func(lsn uint64, rec store.Record) error {
			return nil
		})
		frameBounds(b.Frames)
	})
}
