package idm_test

import (
	"testing"
	"time"

	idm "repro"
)

func drain(sub *idm.Subscription) []idm.Item {
	var out []idm.Item
	for {
		select {
		case it := <-sub.C:
			out = append(out, it)
		default:
			return out
		}
	}
}

func TestSubscribeDeliversMatchesDuringIndexing(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/hit.txt", []byte("urgent deadline tomorrow"))
	fs.WriteFile("/d/miss.txt", []byte("nothing to see"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)

	sub, err := sys.Subscribe(`"urgent deadline"`)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Stop()
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	got := drain(sub)
	if len(got) != 1 || got[0].Name != "hit.txt" {
		t.Fatalf("delivered %+v", got)
	}
}

func TestSubscribeSeesOnlyNewChanges(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/old.txt", []byte("alert existing"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()

	sub, err := sys.Subscribe(`"alert"`)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Stop()

	// Resync with no changes: nothing delivered (unchanged views are
	// not re-pushed).
	sys.Index()
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("unchanged resync delivered %+v", got)
	}

	// A new matching file arrives.
	fs.WriteFile("/d/new.txt", []byte("alert fresh"))
	sys.Index()
	got := drain(sub)
	if len(got) != 1 || got[0].Name != "new.txt" {
		t.Fatalf("delivered %+v", got)
	}

	// An update to the old file re-triggers.
	time.Sleep(time.Millisecond) // ensure a later mtime
	fs.WriteFile("/d/old.txt", []byte("alert changed now"))
	sys.Index()
	got = drain(sub)
	if len(got) != 1 || got[0].Name != "old.txt" {
		t.Fatalf("update delivered %+v", got)
	}
}

func TestSubscribeClassAndAttributeFilter(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/p.tex", []byte("\\section{Results}\nthe numbers"))
	fs.WriteFile("/d/big.txt", []byte(string(make([]byte, 5000))))
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)

	secs, err := sys.Subscribe(`[class="latex_section"]`)
	if err != nil {
		t.Fatal(err)
	}
	defer secs.Stop()
	big, err := sys.Subscribe(`[size > 4200 and name = "*.txt"]`)
	if err != nil {
		t.Fatal(err)
	}
	defer big.Stop()
	sys.Index()

	if got := drain(secs); len(got) != 1 || got[0].Name != "Results" {
		t.Errorf("class filter delivered %+v", got)
	}
	if got := drain(big); len(got) != 1 || got[0].Name != "big.txt" {
		t.Errorf("attribute filter delivered %+v", got)
	}
}

func TestSubscribeStop(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)
	sub, err := sys.Subscribe(`"match me"`)
	if err != nil {
		t.Fatal(err)
	}
	sub.Stop()
	fs.WriteFile("/d/x.txt", []byte("match me later"))
	sys.Index()
	if got := drain(sub); len(got) != 0 {
		t.Errorf("stopped subscription delivered %+v", got)
	}
}

func TestSubscribeRejectsNonPredicates(t *testing.T) {
	sys := idm.Open(idm.Config{Now: fixedNow})
	for _, q := range []string{`//a//b`, `union( //a, //b )`, `delete //a`} {
		if _, err := sys.Subscribe(q); err == nil {
			t.Errorf("Subscribe(%q) accepted", q)
		}
	}
	if _, err := sys.Subscribe(`//bad[`); err == nil {
		t.Error("syntax error accepted")
	}
}
