#!/bin/sh
# Full verification: vet, build, race-enabled tests. CI and pre-commit
# both run this; `make check` is an alias.
set -eu
cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...
echo '>> go build ./...'
go build ./...
echo '>> go test -race ./...'
go test -race ./...
echo 'check: OK'
