#!/bin/sh
# Full verification: vet, build, race-enabled tests. CI and pre-commit
# both run this; `make check` is an alias.
set -eu
cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...
echo '>> go build ./...'
go build ./...
# Observability gate: the obs package and the root metrics/tracing
# integration tests (concurrent queries against a scraped registry)
# run first for fast, attributable failure; the full suite below
# covers them again as part of ./...
echo '>> go test -race ./internal/obs (observability gate)'
go test -race ./internal/obs
echo '>> go test -race -run "Obs|Trace|Metrics|Scrape|QueryLog|Prom|Federation" . (observability integration)'
go test -race -run 'Obs|Trace|Metrics|Scrape|QueryLog|Prom|Federation' .
# Resilience gate: the fault-injection matrix, the degraded-read
# acceptance scenario and the serial-vs-parallel differential suite run
# first for attributable failure; ./... repeats them below.
echo '>> go test -race -run "Fault|SourceDown|FailClosed|StaleResults|Differential|Resilience" . ./internal/fault ./internal/sources ./internal/iql (resilience gate)'
go test -race -run 'Fault|SourceDown|FailClosed|StaleResults|Differential|Resilience' . ./internal/fault ./internal/sources ./internal/iql
# Planner gate: the cost-based planner's unit tests (cost model,
# estimate surfaces, adaptive decisions), the rvm statistics provider,
# the root-level cardinality-accuracy and planner-choice golden suites,
# and the three-way differential suite run first for attributable
# failure; ./... repeats them below.
echo '>> go test -race -run "Planner|Cost|Estimate|Adaptive|Cardinality|Differential" ./internal/iql ./internal/rvm . (planner gate)'
go test -race -run 'Planner|Cost|Estimate|Adaptive|Cardinality|Differential' ./internal/iql ./internal/rvm .
# Store gate: the durable-store package (WAL/snapshot/recovery units)
# and the root-level crash-matrix + corruption + recovered-index suites
# run first for attributable failure; ./... repeats them below.
echo '>> go test -race ./internal/store (store gate)'
go test -race ./internal/store
# Storage gate: the Engine conformance suite runs every contract test
# (append/tail/recover/drop/digest + the crash matrix + the dir lock)
# against BOTH backends — WAL and compacted-segment — so a backend
# can only regress attributably (docs/PERSISTENCE.md).
echo '>> go test -race ./internal/storage (storage backend matrix)'
go test -race ./internal/storage
echo '>> go test -race -run "Crash|Corruption|Recovered|RemoveSource" . (durability gate)'
go test -race -run 'Crash|Corruption|Recovered|RemoveSource' .
# Replication gate: the repl package (shipping, follower recovery,
# chaos transport, concurrent-ship stress) plus the root-level
# crash-a-follower matrix, chaos lanes, staleness/differential suites
# and the federation policy tests run first for attributable failure;
# ./... repeats them below.
echo '>> go test -race ./internal/repl (replication gate)'
go test -race ./internal/repl
echo '>> go test -race -run "Replica|ReplChaos|Federation|DoubleCrash" . (replication integration)'
go test -race -run 'Replica|ReplChaos|Federation|DoubleCrash' .
# Server gate: the multi-tenant daemon package — unit/integration
# tests, the concurrent-tenant load harness (at the in-gate scale its
# flag defaults set), the seeded chaos lane and the crash-recovery
# test — runs first for attributable failure; ./... repeats it below.
echo '>> go test -race ./internal/server (multi-tenant server gate)'
go test -race ./internal/server
echo '>> go test -race ./...'
go test -race ./...
echo 'check: OK'
