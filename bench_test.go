// Benchmarks regenerating every table and figure of §7 of the iDM paper
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured comparison):
//
//	BenchmarkTable2_DatasetCharacteristics
//	BenchmarkTable3_IndexSizes
//	BenchmarkFigure5_IndexingTimes
//	BenchmarkTable4_QueryResults
//	BenchmarkFigure6_QueryResponseTimes
//
// plus the ablation benches DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
package idm_test

import (
	"sync"
	"testing"
	"time"

	idm "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/iql"
	"repro/internal/mail"
	"repro/internal/rvm"
	"repro/internal/stream"
)

// benchScale trades fidelity against bench runtime; 0.05 keeps the
// paper's ratios with ~5% of its item counts.
const (
	benchScale = 0.05
	benchSeed  = 42
)

var (
	sharedOnce  sync.Once
	sharedSetup *experiments.Setup
	sharedErr   error
)

// setup returns a shared indexed system (dataset generated once, with
// the IMAP latency model off so query benches are undisturbed).
func setup(b *testing.B) *experiments.Setup {
	b.Helper()
	sharedOnce.Do(func() {
		sharedSetup, sharedErr = experiments.NewSetup(benchScale, benchSeed, false)
		if sharedErr == nil {
			sharedErr = sharedSetup.Index()
		}
	})
	if sharedErr != nil {
		b.Fatal(sharedErr)
	}
	return sharedSetup
}

// BenchmarkTable2_DatasetCharacteristics measures a full indexing pass
// and reports the Table 2 resource view counts as metrics.
func BenchmarkTable2_DatasetCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSetup(benchScale, benchSeed, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Index(); err != nil {
			b.Fatal(err)
		}
		rows := experiments.Table2(s)
		total := rows[len(rows)-1]
		b.ReportMetric(float64(total.Base), "base-views")
		b.ReportMetric(float64(total.DerivedTotal), "derived-views")
		b.ReportMetric(float64(total.Total), "total-views")
	}
}

// BenchmarkTable3_IndexSizes measures per-source index construction and
// reports sizes in MB.
func BenchmarkTable3_IndexSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		total := rows[len(rows)-1]
		b.ReportMetric(total.Content, "content-MB")
		b.ReportMetric(total.Total, "total-MB")
		if total.NetInputMB > 0 {
			b.ReportMetric(100*total.Total/total.NetInputMB, "pct-of-net-input")
		}
	}
}

// BenchmarkFigure5_IndexingTimes measures indexing with the IMAP latency
// model on and reports the per-source time split in milliseconds.
func BenchmarkFigure5_IndexingTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			prefix := r.Source + "-"
			b.ReportMetric(ms(r.CatalogInsert), prefix+"catalog-ms")
			b.ReportMetric(ms(r.ComponentIndexing), prefix+"indexing-ms")
			b.ReportMetric(ms(r.DataSourceAccess), prefix+"access-ms")
		}
	}
}

// BenchmarkTable4_QueryResults runs each evaluation query once per
// iteration and reports its result count.
func BenchmarkTable4_QueryResults(b *testing.B) {
	s := setup(b)
	for _, q := range experiments.PaperQueries() {
		q := q
		b.Run(q.ID, func(b *testing.B) {
			engine := s.Engine(iql.ForwardExpansion)
			var count int
			for i := 0; i < b.N; i++ {
				res, err := engine.Query(q.IQL)
				if err != nil {
					b.Fatal(err)
				}
				count = res.Count()
			}
			b.ReportMetric(float64(count), "results")
		})
	}
}

// BenchmarkFigure6_QueryResponseTimes measures warm-cache response time
// per query (the per-op time is the figure's bar).
func BenchmarkFigure6_QueryResponseTimes(b *testing.B) {
	s := setup(b)
	engine := s.Engine(iql.ForwardExpansion)
	for _, q := range experiments.PaperQueries() {
		q := q
		// Warm the caches as the paper does.
		if _, err := engine.Query(q.IQL); err != nil {
			b.Fatal(err)
		}
		b.Run(q.ID, func(b *testing.B) {
			var inter int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Query(q.IQL)
				if err != nil {
					b.Fatal(err)
				}
				inter = res.Plan.Intermediates
			}
			b.ReportMetric(float64(inter), "intermediates")
		})
	}
}

// BenchmarkAblation_IndexVsScan contrasts the content index against the
// grep-style scan baseline the paper's introduction argues against.
func BenchmarkAblation_IndexVsScan(b *testing.B) {
	s := setup(b)
	b.Run("indexed", func(b *testing.B) {
		engine := s.Engine(iql.ForwardExpansion)
		for i := 0; i < b.N; i++ {
			if _, err := engine.Query(`"database tuning"`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.ScanPhrase(s.Mgr, "database tuning")
		}
	})
}

// BenchmarkAblation_ExpansionStrategy compares forward, backward and
// automatic expansion on a Q8-shaped path query (§7.2's discussion).
func BenchmarkAblation_ExpansionStrategy(b *testing.B) {
	s := setup(b)
	const q = `//*[class="emailmessage"]//*.tex`
	for _, exp := range []iql.Expansion{iql.ForwardExpansion, iql.BackwardExpansion, iql.AutoExpansion} {
		exp := exp
		b.Run(exp.String(), func(b *testing.B) {
			engine := s.Engine(exp)
			var inter int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				inter = res.Plan.Intermediates
			}
			b.ReportMetric(float64(inter), "intermediates")
		})
	}
}

// BenchmarkAblation_GroupReplica compares graph navigation through the
// group replica (data shipping) against live-source navigation (query
// shipping) — the §5.2 trade-off.
func BenchmarkAblation_GroupReplica(b *testing.B) {
	s, err := experiments.NewSetupWithOptions(0.01, benchSeed, false,
		rvm.Options{ReplicateGroups: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Index(); err != nil {
		b.Fatal(err)
	}
	oids := s.Mgr.AllOIDs()
	if len(oids) > 200 {
		oids = oids[:200]
	}
	b.Run("replica", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, oid := range oids {
				s.Mgr.Children(oid)
			}
		}
	})
	// Query-shipping manager: same dataset, replication off.
	b.Run("live", func(b *testing.B) {
		s2 := newNoReplicaSetup(b)
		oids2 := s2.Mgr.AllOIDs()
		if len(oids2) > 200 {
			oids2 = oids2[:200]
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, oid := range oids2 {
				s2.Mgr.Children(oid)
			}
		}
	})
}

var (
	noReplicaOnce  sync.Once
	noReplicaSetup *experiments.Setup
	noReplicaErr   error
)

func newNoReplicaSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	noReplicaOnce.Do(func() {
		noReplicaSetup, noReplicaErr = experiments.NewSetupWithOptions(0.01, benchSeed, false,
			rvm.Options{ReplicateGroups: false})
		if noReplicaErr == nil {
			noReplicaErr = noReplicaSetup.Index()
		}
	})
	if noReplicaErr != nil {
		b.Fatal(noReplicaErr)
	}
	return noReplicaSetup
}

// BenchmarkAblation_PushVsPoll contrasts push-based stream delivery
// (§4.4.2 "need to push") against the generic polling facility
// (§4.4.1). The measured quantity is notification latency: the time
// from a message entering the store to a subscribed operator seeing it.
// Push delivers immediately; the pseudo-stream poller pays up to one
// polling interval.
func BenchmarkAblation_PushVsPoll(b *testing.B) {
	b.Run("push", func(b *testing.B) {
		st := mail.NewStore()
		broker := stream.NewBroker()
		seen := make(chan struct{}, 1)
		broker.Subscribe("msgs", stream.OperatorFunc(func(stream.Event) {
			select {
			case seen <- struct{}{}:
			default:
			}
		}))
		// Wire the store's push feed to the broker.
		msgs := st.Watch()
		go func() {
			for m := range msgs {
				broker.Publish("msgs", core.NewView(m.Subject, ""))
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Append(&mail.Message{Folder: "INBOX", Subject: "m"})
			<-seen
		}
		b.StopTimer()
		st.CloseWatchers()
	})
	b.Run("poll-1ms", func(b *testing.B) {
		st := mail.NewStore()
		broker := stream.NewBroker()
		seen := make(chan struct{}, 1)
		broker.Subscribe("msgs", stream.OperatorFunc(func(stream.Event) {
			select {
			case seen <- struct{}{}:
			default:
			}
		}))
		var last uint64
		poller := stream.StartPoller(broker, "msgs", time.Millisecond, func() []core.ResourceView {
			var out []core.ResourceView
			for _, m := range st.PollSince(last) {
				last = m.UID
				out = append(out, core.NewView(m.Subject, ""))
			}
			return out
		})
		defer poller.Stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Append(&mail.Message{Folder: "INBOX", Subject: "m"})
			<-seen
		}
	})
}

// BenchmarkAblation_LazyVsEager contrasts answering one content query by
// lazy navigation over the live source graph against the eager
// index-then-query pipeline (§4.1's lazy computation versus the
// prototype's indexes).
func BenchmarkAblation_LazyVsEager(b *testing.B) {
	s := setup(b)
	b.Run("eager-indexed-query", func(b *testing.B) {
		engine := s.Engine(iql.ForwardExpansion)
		for i := 0; i < b.N; i++ {
			if _, err := engine.Query(`"Mike Franklin"`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy-live-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.ScanPhrase(s.Mgr, "Mike Franklin")
		}
	})
}

// BenchmarkAblation_QueryCache measures the version-invalidated query
// result cache: the warm-cache regime of Figure 6 made explicit.
func BenchmarkAblation_QueryCache(b *testing.B) {
	d := idm.GenerateDataset(idm.DatasetConfig{Scale: 0.02, Seed: benchSeed})
	const q = `//PIM//Introduction[class="latex_section" and "Mike Franklin"]`
	b.Run("cached", func(b *testing.B) {
		sys, err := idm.OpenDataset(d, idm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Index(); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Query(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		d2 := idm.GenerateDataset(idm.DatasetConfig{Scale: 0.02, Seed: benchSeed})
		sys, err := idm.OpenDataset(d2, idm.Config{DisableQueryCache: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Index(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
