package idm_test

import (
	"fmt"
	"testing"

	idm "repro"
)

// indexQueries are the three golden EXPLAIN queries of
// testdata/explain: a keyword query (text index), a path query with a
// class predicate (name/class indexes), and a texref/figure join
// (tuple index). Between them they exercise every index the Resource
// View Manager rebuilds on recovery.
var indexQueries = []struct {
	name  string
	query string
}{
	{"keyword", `"Mike Franklin"`},
	{"path", `//VLDB2006//Introduction[class="latex_section"]`},
	{"join", `join( //[class="texref"] as A, //figure*[class="environment"] as B, A.name = B.tuple.label )`},
}

// renderRows flattens a result into a comparable, human-diffable form.
func renderRows(r *idm.Result) []string {
	out := []string{fmt.Sprintf("columns=%v", r.Columns)}
	for _, row := range r.Rows {
		line := ""
		for _, it := range row {
			line += fmt.Sprintf("[oid=%d name=%q class=%q source=%q uri=%q path=%q]",
				it.OID, it.Name, it.Class, it.Source, it.URI, it.Path)
		}
		out = append(out, line)
	}
	return out
}

// TestRecoveredIndexEquivalence pins that the text, name/class and tuple
// indexes rebuilt from a recovered graph answer the three golden EXPLAIN
// queries identically to the indexes built by a fresh walk — same rows
// (OIDs included) and the same normalized EXPLAIN, meaning the planner
// picked the same index path over the same cardinalities.
func TestRecoveredIndexEquivalence(t *testing.T) {
	fs := durableFS()
	dir := t.TempDir()

	// Fresh walk: sync the filesystem into a durable system.
	fresh, _, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Index(); err != nil {
		t.Fatal(err)
	}
	type answer struct {
		rows    []string
		explain string
	}
	want := map[string]answer{}
	for _, q := range indexQueries {
		res, err := fresh.Query(q.query)
		if err != nil {
			t.Fatalf("fresh %s: %v", q.name, err)
		}
		exp, err := fresh.Explain(q.query)
		if err != nil {
			t.Fatalf("fresh explain %s: %v", q.name, err)
		}
		want[q.name] = answer{rows: renderRows(res), explain: normalizeExplain(exp)}
		if len(res.Rows) == 0 {
			t.Fatalf("fresh %s returned no rows; fixture no longer exercises the index", q.name)
		}
	}
	wantDigest := fresh.StateDigest()
	if err := fresh.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: reopen the directory WITHOUT re-adding any source. Every
	// answer now comes from indexes rebuilt over the recovered graph.
	rec, info, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if len(info.Warnings) != 0 {
		t.Fatalf("clean shutdown recovered with warnings: %v", info.Warnings)
	}
	if got := rec.StateDigest(); got != wantDigest {
		t.Fatalf("recovered digest %s != fresh digest %s", got, wantDigest)
	}
	for _, q := range indexQueries {
		res, err := rec.Query(q.query)
		if err != nil {
			t.Fatalf("recovered %s: %v", q.name, err)
		}
		got := renderRows(res)
		if fmt.Sprint(got) != fmt.Sprint(want[q.name].rows) {
			t.Errorf("%s: recovered rows differ from fresh walk\n got: %v\nwant: %v",
				q.name, got, want[q.name].rows)
		}
		exp, err := rec.Explain(q.query)
		if err != nil {
			t.Fatalf("recovered explain %s: %v", q.name, err)
		}
		if normalizeExplain(exp) != want[q.name].explain {
			t.Errorf("%s: recovered EXPLAIN differs from fresh walk\n--- recovered ---\n%s\n--- fresh ---\n%s",
				q.name, normalizeExplain(exp), want[q.name].explain)
		}
	}
}

// TestRecoveredIndexEquivalenceFromSnapshot repeats the equivalence
// check when recovery starts from a compacted snapshot instead of a WAL
// replay.
func TestRecoveredIndexEquivalenceFromSnapshot(t *testing.T) {
	fs := durableFS()
	dir := t.TempDir()
	fresh, _, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.AddFileSystem("filesystem", fs); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Index(); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantDigest := fresh.StateDigest()
	want := map[string][]string{}
	for _, q := range indexQueries {
		res, err := fresh.Query(q.query)
		if err != nil {
			t.Fatal(err)
		}
		want[q.name] = renderRows(res)
	}
	fresh.Close()

	rec, info, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if info.SnapshotSeq == 0 || info.WALRecords != 0 {
		t.Fatalf("expected pure snapshot recovery, got %+v", info)
	}
	if rec.StateDigest() != wantDigest {
		t.Fatal("snapshot recovery diverged from live state")
	}
	for _, q := range indexQueries {
		res, err := rec.Query(q.query)
		if err != nil {
			t.Fatalf("recovered %s: %v", q.name, err)
		}
		if fmt.Sprint(renderRows(res)) != fmt.Sprint(want[q.name]) {
			t.Errorf("%s: snapshot-recovered rows differ\n got: %v\nwant: %v",
				q.name, renderRows(res), want[q.name])
		}
	}
}
