package idm_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	idm "repro"
	"repro/internal/vfs"
)

// walSegment returns the on-disk WAL segment path the store uses for a
// source id (hex-encoded to stay filesystem-safe).
func walSegment(dir, source string) string {
	return filepath.Join(dir, "wal", fmt.Sprintf("seg-%x.wal", source))
}

// TestRemoveSourceDropsWALSegments is the regression test for
// System.RemoveSource on a durable system: removing a source must drop
// its persisted WAL segment, and a later recovery must not resurrect
// the removed views — with or without an intervening checkpoint.
func TestRemoveSourceDropsWALSegments(t *testing.T) {
	otherFS := vfs.NewWithClock(fixedNow)
	otherFS.WriteFile("/keep.txt", []byte("keeper"))

	dir := t.TempDir()
	sys, _, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFileSystem("papers", durableFS()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFileSystem("other", otherFS); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"papers", "other"} {
		if _, err := os.Stat(walSegment(dir, src)); err != nil {
			t.Fatalf("no WAL segment for %s after sync: %v", src, err)
		}
	}

	if err := sys.RemoveSource("papers"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walSegment(dir, "papers")); !os.IsNotExist(err) {
		t.Fatalf("RemoveSource left the papers WAL segment behind (stat err: %v)", err)
	}
	if _, err := os.Stat(walSegment(dir, "other")); err != nil {
		t.Fatalf("RemoveSource deleted an unrelated segment: %v", err)
	}
	want := sys.StateDigest()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must agree: only the surviving source's views come back.
	re, info, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(info.Warnings) != 0 {
		t.Fatalf("recovery warned: %v", info.Warnings)
	}
	if got := re.StateDigest(); got != want {
		t.Fatalf("recovered digest %s != pre-close digest %s", got, want)
	}
	res, err := re.Query(`//keep*`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("surviving source lost views: %d rows for //keep*", len(res.Rows))
	}
	gone, err := re.Query(`//vldb*`)
	if err != nil {
		t.Fatal(err)
	}
	if len(gone.Rows) != 0 {
		t.Fatalf("removed source resurrected %d views", len(gone.Rows))
	}
}

// TestRemoveSourceAfterCheckpoint covers the harder window: the removed
// source's views live in a snapshot (its WAL segment is already gone),
// so only the meta-segment DropSource record keeps them from being
// resurrected on recovery.
func TestRemoveSourceAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sys, _, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFileSystem("papers", durableFS()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint already dropped the WAL; the views are snapshot-only.
	if _, err := os.Stat(walSegment(dir, "papers")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint left a WAL segment (stat err: %v)", err)
	}
	if err := sys.RemoveSource("papers"); err != nil {
		t.Fatal(err)
	}
	want := sys.StateDigest()
	sys.Close()

	re, info, err := idm.OpenDurable(durableConfig(dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.SnapshotSeq == 0 {
		t.Fatalf("recovery skipped the snapshot: %+v", info)
	}
	if got := re.StateDigest(); got != want {
		t.Fatalf("recovered digest %s != post-remove digest %s", got, want)
	}
	if info.Views != 0 {
		t.Fatalf("snapshot views outlived the durable DropSource: %d recovered", info.Views)
	}
	if srcs := re.Sources(); len(srcs) != 0 {
		t.Fatalf("removed source came back: %v", srcs)
	}
}
