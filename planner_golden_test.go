package idm_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestPlannerChoicesGolden pins the adaptive planner's decisions — the
// chosen strategy, the row estimate, and every "planner:" note — for
// the eight paper queries over the deterministic evaluation dataspace.
// The goldens make cost-model changes reviewable: recalibrating a
// constant or refining an estimator shows up as a strategy or cost
// diff, not as an unexplained benchmark swing. Run
// `go test -run TestPlannerChoicesGolden -update .` after deliberate
// cost-model changes and eyeball the diff.
func TestPlannerChoicesGolden(t *testing.T) {
	s, err := experiments.NewSetup(0.05, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Index(); err != nil {
		t.Fatal(err)
	}
	e := s.AdaptiveEngine(1)
	for _, q := range experiments.PaperQueries() {
		t.Run(q.ID, func(t *testing.T) {
			res, err := e.Query(q.IQL)
			if err != nil {
				t.Fatalf("query %s: %v", q.ID, err)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "query: %s\n", q.IQL)
			fmt.Fprintf(&b, "strategy: %s\n", res.Plan.Strategy)
			fmt.Fprintf(&b, "estimated rows: %d\n", res.Plan.EstimatedRows)
			for _, n := range res.Plan.Notes {
				if strings.HasPrefix(n, "planner:") {
					fmt.Fprintf(&b, "%s\n", n)
				}
			}
			got := b.String()
			path := filepath.Join("testdata", "planner", q.ID+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("planner choices drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
