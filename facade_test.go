package idm_test

import (
	"testing"
	"time"

	idm "repro"
	"repro/internal/core"
	"repro/internal/sources"
)

func TestFacadeAccessors(t *testing.T) {
	sys := idm.Open(idm.Config{Now: fixedNow})
	if sys.Manager() == nil {
		t.Error("Manager nil")
	}
	if got := sys.Converters().Names(); len(got) != 2 {
		t.Errorf("converters = %v", got)
	}
	if cfg := idm.DefaultDatasetConfig(); cfg.Scale <= 0 {
		t.Errorf("default config = %+v", cfg)
	}
	if cfg := idm.PaperDatasetConfig(); cfg.Scale != 1.0 {
		t.Errorf("paper config = %+v", cfg)
	}
}

// customSource is a minimal user-provided plugin, exercising AddSource.
type customSource struct{ root core.ResourceView }

func (c *customSource) ID() string                       { return "custom" }
func (c *customSource) Root() (core.ResourceView, error) { return c.root, nil }
func (c *customSource) Changes() <-chan sources.Change   { return nil }
func (c *customSource) Close() error                     { return nil }

func TestFacadeCustomSource(t *testing.T) {
	note := sources.Annotate(core.NewView("note", core.ClassFile).
		WithContent(core.StringContent("custom plugin content")), "/note", true)
	root := sources.Annotate(core.NewView("custom", "").
		WithGroup(core.SetGroup(note)), "/", true)
	sys := idm.Open(idm.Config{Now: fixedNow})
	if err := sys.AddSource(&customSource{root: root}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Sources(); len(got) != 1 || got[0] != "custom" {
		t.Errorf("sources = %v", got)
	}
	res, err := sys.Query(`"custom plugin content"`)
	if err != nil || res.Count() != 1 {
		t.Errorf("res = %v, %v", res, err)
	}
}

func TestFacadeStartPolling(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()
	stop := sys.StartPolling(2 * time.Millisecond)
	defer stop()
	fs.WriteFile("/d/late.txt", []byte("latecontent here"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := sys.Query(`"latecontent"`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("polling never picked up the file")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSimilarImagesFacade(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/photos")
	img := func(center byte) []byte {
		out := make([]byte, 1024)
		for i := range out {
			out[i] = center + byte(i%7)
		}
		return out
	}
	fs.WriteFile("/photos/sunset1.jpg", img(30))
	fs.WriteFile("/photos/sunset2.jpg", img(33))
	fs.WriteFile("/photos/noon.jpg", img(220))

	sys := idm.Open(idm.Config{Now: fixedNow, IndexImages: true})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()

	res, err := sys.Query(`//sunset1.jpg`)
	if err != nil || res.Count() != 1 {
		t.Fatalf("query: %v (%d)", err, res.Count())
	}
	similar := sys.SimilarImages(res.Items[0].OID, 1)
	if len(similar) != 1 || similar[0].Name != "sunset2.jpg" {
		t.Fatalf("similar = %+v", similar)
	}
	if similar[0].Similarity <= 0 || similar[0].Similarity > 1 {
		t.Errorf("similarity = %v", similar[0].Similarity)
	}
	// Without the option the index is empty.
	off := idm.Open(idm.Config{Now: fixedNow})
	off.AddFileSystem("filesystem", fs)
	off.Index()
	res, _ = off.Query(`//sunset1.jpg`)
	if got := off.SimilarImages(res.Items[0].OID, 1); got == nil {
	} else if len(got) != 0 {
		t.Errorf("similar without option = %v", got)
	}
}

func TestOpenDatasetDuplicateSourceIDs(t *testing.T) {
	d := idm.GenerateDataset(idm.DatasetConfig{Scale: 0.01, Seed: 1})
	sys, err := idm.OpenDataset(d, idm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Registering the same source id again fails cleanly.
	if err := sys.AddFileSystem("filesystem", d.FS); err == nil {
		t.Error("duplicate source id accepted")
	}
}
