// Provenance: the two §8 follow-ups of the iDM paper — versioning
// ("logically, each change creates a new version of the whole
// dataspace") and lineage ("the history of all data transformations
// that originated a given resource view") — plus ranked keyword search
// and a two-peer federation, all features the paper sketches as enabled
// by having one unified model underneath.
package main

import (
	"bytes"
	"fmt"
	"log"

	idm "repro"
)

func main() {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/Projects/PIM")
	fs.WriteFile("/Projects/PIM/paper.tex",
		[]byte("\\section{Introduction}\nOn dataspaces, dataspaces and more dataspaces."))
	fs.WriteFile("/Projects/PIM/notes.txt", []byte("dataspaces once"))

	sys := idm.Open(idm.Config{})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		log.Fatal(err)
	}

	// --- Versioning ------------------------------------------------------
	fmt.Printf("dataspace version after first index: %d\n", sys.Version())
	mark := sys.Version()

	// The user copies a file and edits another; the sync journal records
	// each change as a new dataspace version.
	fs.Copy("/Projects/PIM/paper.tex", "/Projects/PIM/paper-v2.tex")
	fs.WriteFile("/Projects/PIM/notes.txt", []byte("dataspaces, edited"))
	// (Change notifications also mark the source dirty for Refresh; a
	// full Index is the deterministic choice for an example.)
	if _, err := sys.Index(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after copy + edit the version is %d; changes since %d:\n", sys.Version(), mark)
	for _, c := range sys.Changes(mark) {
		fmt.Printf("  v%-3d %-8s %s\n", c.Version, c.Kind, c.URI)
	}

	// --- Lineage ---------------------------------------------------------
	// Record the copy's provenance, then ask where a section view deep
	// inside the copied file came from.
	orig, _ := sys.Query(`//paper.tex`)
	copied, _ := sys.Query(`//paper-v2.tex`)
	sys.RecordDerivation(copied.Items[0].OID, orig.Items[0].OID, "copy")

	section, err := sys.Query(`//paper-v2.tex//Introduction`)
	if err != nil || section.Count() == 0 {
		log.Fatalf("section query: %v (%d results)", err, section.Count())
	}
	steps, err := sys.Lineage(section.Items[0].OID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlineage of the Introduction section inside the copied file:")
	for _, s := range steps {
		name := s.Name
		if name == "" {
			name = "(" + s.Class + ")"
		}
		fmt.Printf("  %-12s %s\n", s.Relation, name)
	}

	// --- Ranked search ----------------------------------------------------
	res, err := sys.QueryRanked(`"dataspaces"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranked results for \"dataspaces\" (by occurrence count):")
	for i, row := range res.Rows {
		fmt.Printf("  %.0f  %s\n", res.Scores[i], row[0].Path)
	}

	// --- Catalog persistence ----------------------------------------------
	var buf bytes.Buffer
	if err := sys.SaveCatalog(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := idm.OpenWithCatalog(idm.Config{}, &buf)
	if err != nil {
		log.Fatal(err)
	}
	restored.AddFileSystem("filesystem", fs)
	restored.Index()
	again, _ := restored.Query(`//paper.tex`)
	fmt.Printf("\nOID stable across restart: %v (was %d, is %d)\n",
		orig.Items[0].OID == again.Items[0].OID, orig.Items[0].OID, again.Items[0].OID)

	// --- Federation ---------------------------------------------------------
	peerFS := idm.NewFileSystem()
	peerFS.MkdirAll("/work")
	peerFS.WriteFile("/work/report.txt", []byte("dataspaces on the desktop peer"))
	peer := idm.Open(idm.Config{})
	peer.AddFileSystem("filesystem", peerFS)
	peer.Index()

	fed := idm.NewFederation()
	fed.AddPeer("laptop", sys)
	fed.AddPeer("desktop", peer)
	fres, err := fed.Query(`"dataspaces"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfederated query across %d peers: %d rows\n", len(fed.Peers()), fres.Count())
	for _, r := range fres.Rows {
		fmt.Printf("  [%s] %s\n", r.Peer, r.Row[0].Path)
	}
}
