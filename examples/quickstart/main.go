// Quickstart: build a tiny personal dataspace by hand — the
// files&folders example of Figure 1 in the iDM paper, including the
// LaTeX paper whose inside structure becomes part of the graph and the
// 'All Projects' folder link that makes the graph cyclic — then index it
// and run the paper's introduction Query 1.
package main

import (
	"fmt"
	"log"

	idm "repro"
)

const vldbPaper = `\documentclass{vldb}
\title{iDM: A Unified and Versatile Data Model}
\begin{document}
\begin{abstract}
Personal Information Management Systems require a powerful and
versatile data model.
\end{abstract}
\section{Introduction}
\label{sec:intro}
This work is motivated by the personal information jungle, following
the dataspace abstraction of Mike Franklin, Alon Halevy and David Maier.
\subsection{The Problem}
See Section~\ref{sec:prelim} for definitions.
\subsection{Our Contributions}
We present the iMeMex Data Model.
\section{Preliminaries}
\label{sec:prelim}
A resource view is a 4-tuple of name, tuple, content and group components.
\section{Conclusion}
Unified systems win.
\end{document}`

func main() {
	// 1. Build the files&folders substrate of Figure 1.
	fs := idm.NewFileSystem()
	must(fs.MkdirAll("/Projects/PIM"))
	must(fs.MkdirAll("/Projects/OLAP"))
	must(fs.WriteFile("/Projects/PIM/vldb 2006.tex", []byte(vldbPaper)))
	must(fs.WriteFile("/Projects/PIM/Grant.doc", []byte("budget and grant proposal for the PIM project")))
	// The folder link back to /Projects puts a cycle in the resource
	// view graph — iDM handles arbitrary directed graphs.
	must(fs.Link("/Projects/PIM/All Projects", "/Projects"))

	// 2. Open a PDSMS over it and index.
	sys := idm.Open(idm.Config{})
	if err := sys.AddFileSystem("filesystem", fs); err != nil {
		log.Fatal(err)
	}
	report, err := sys.Index()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d resource views (files, folders, and the structure inside the .tex file)\n\n",
		report.TotalViews())

	// 3. Query 1 of the paper's introduction: "Show me all LaTeX
	// 'Introduction' sections pertaining to project PIM that contain
	// the phrase 'Mike Franklin'." — one query bridging the outside
	// folder hierarchy and the inside document structure.
	const query1 = `//PIM//Introduction[class="latex_section" and "Mike Franklin"]`
	res, err := sys.Query(query1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query 1: %s\n%d result(s):\n", query1, res.Count())
	for _, item := range res.Items {
		fmt.Printf("  %s  [%s]\n", item.Path, item.Class)
	}

	// 4. Keyword search works over every component of every view.
	res, err = sys.Query(`"grant proposal"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkeyword search \"grant proposal\": %d result(s)\n", res.Count())
	for _, item := range res.Items {
		fmt.Printf("  %s\n", item.Path)
	}

	// 5. Attribute predicates evaluate against the tuple component
	// (the W_FS filesystem schema of §3.2).
	res, err = sys.Query(`[size > 100]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nviews with size > 100 bytes: %d\n", res.Count())
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
