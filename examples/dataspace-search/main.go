// Dataspace search: the project-management scenario of the iDM paper's
// introduction. Big projects keep documents on the local disk, small
// projects keep them as email attachments — and Query 2 ("all documents
// pertaining to project OLAP that have a figure containing the phrase
// 'Indexing Time' in its label") must bridge both subsystems plus the
// structure inside the files. This example generates the synthetic
// personal dataspace, indexes filesystem and email together, and runs
// cross-subsystem queries including the Q7/Q8 joins of the evaluation.
package main

import (
	"fmt"
	"log"
	"time"

	idm "repro"
)

func main() {
	// Generate a deterministic synthetic personal dataspace: folders,
	// LaTeX/XML documents, email with attachments (see internal/dataset).
	data := idm.GenerateDataset(idm.DatasetConfig{Scale: 0.05, Seed: 42})
	fmt.Printf("dataspace: %d files, %d folders, %d messages, %d attachments\n",
		data.Info.Files, data.Info.Folders, data.Info.Messages, data.Info.Attachments)

	sys, err := idm.OpenDataset(data, idm.Config{
		Now: func() time.Time { return time.Date(2005, 6, 15, 10, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	report, err := sys.Index()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d resource views in %v\n\n", report.TotalViews(), time.Since(start).Round(time.Millisecond))

	for _, b := range []idm.SourceBreakdown{sys.Breakdown("filesystem"), sys.Breakdown("email")} {
		fmt.Printf("  %-12s base items %5d → +%d derived views (xml %d, latex %d)\n",
			b.Source, b.Base, b.DerivedXML+b.DerivedLatex+b.DerivedOther, b.DerivedXML, b.DerivedLatex)
	}
	fmt.Println()

	queries := []struct{ label, q string }{
		{"Query 2 (intro): OLAP figures about Indexing time, across disk AND email",
			`//OLAP//[class="figure" and "Indexing time"]`},
		{"Q5: conclusions mentioning systems in VLDB paper folders",
			`//VLDB200?//?onclusion*/*["systems"]`},
		{"Q7: texrefs joined to the figures they reference",
			`join( //VLDB2006//*[class="texref"] as A, //VLDB2006//figure*[class="environment"] as B, A.name=B.tuple.label)`},
		{"Q8: .tex email attachments matching papers on disk",
			`join( //*[class="emailmessage"]//*.tex as A, //papers//*.tex as B, A.name = B.name )`},
	}
	for _, item := range queries {
		start := time.Now()
		res, err := sys.Query(item.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s\n  %d result(s) in %v\n", item.label, item.q, res.Count(),
			time.Since(start).Round(time.Microsecond))
		for i, row := range res.Rows {
			if i >= 3 {
				fmt.Printf("    ...\n")
				break
			}
			switch len(row) {
			case 2:
				fmt.Printf("    %s (%s)  ⋈  %s (%s)\n", row[0].Path, row[0].Source, row[1].Path, row[1].Source)
			default:
				fmt.Printf("    %s (%s)\n", row[0].Path, row[0].Source)
			}
		}
		fmt.Println()
	}
}
