// Modeling: working with the iDM data model directly — resource views,
// the four components, resource view classes with conformance checking,
// generalization hierarchies (§3.1), lazy views (§4.1) and graph
// algorithms over cyclic resource view graphs (§2.3). This example
// rebuilds Figure 1(b) of the paper by hand, without any data source
// plugin.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	reg := core.StandardRegistry()
	now := time.Date(2005, 9, 22, 16, 14, 0, 0, time.UTC)
	fsTuple := func(size int64) core.TupleComponent {
		return core.TupleComponent{
			Schema: core.FSSchema,
			Tuple:  core.Tuple{core.Int(size), core.Time(now), core.Time(now)},
		}
	}

	// Inside structure of 'vldb 2006.tex' (a fragment of Figure 1).
	prelim := core.NewView("Preliminaries", core.ClassLatexSection).
		WithContent(core.StringContent("definitions of resource views"))
	ref := core.NewView("sec:prelim", core.ClassTexRef).
		WithGroup(core.SetGroup(prelim)) // the cross edge
	problem := core.NewView("The Problem", core.ClassLatexSubsection).
		WithContent(core.StringContent("the inside-outside divide")).
		WithGroup(core.SeqGroup(ref))
	intro := core.NewView("Introduction", core.ClassLatexSection).
		WithContent(core.StringContent("personal information, says Mike Franklin")).
		WithGroup(core.SeqGroup(problem))
	document := core.NewView("document", core.ClassLatexDocument).
		WithGroup(core.SeqGroup(intro, prelim))

	// The file itself: a lazy view whose group component would be
	// computed by a Content2iDM converter on first access (§4.1). Here
	// we count conversions to show it happens exactly once.
	conversions := 0
	vldb := &core.LazyView{
		VName:   "vldb 2006.tex",
		VClass:  core.ClassLatexFile,
		TupleFn: func() core.TupleComponent { return fsTuple(423_000) },
		ContentFn: func() core.Content {
			return core.StringContent("\\documentclass{vldb} ... raw bytes ...")
		},
		GroupFn: func() core.Group {
			conversions++
			return core.SeqGroup(document)
		},
	}

	// The outside files&folders of Figure 1, including the cycle:
	// Projects → PIM → All Projects → Projects.
	grant := core.NewView("Grant.doc", core.ClassFile).
		WithTuple(fsTuple(52_000)).
		WithContent(core.StringContent("grant proposal"))
	pim := core.NewView("PIM", core.ClassFolder).WithTuple(fsTuple(4096))
	allProjects := core.NewView("All Projects", core.ClassFolder).WithTuple(fsTuple(4096))
	projects := core.NewView("Projects", core.ClassFolder).WithTuple(fsTuple(4096))
	projects.VGroup = core.SetGroup(pim)
	pim.VGroup = core.SetGroup(vldb, grant, allProjects)
	allProjects.VGroup = core.SetGroup(projects)

	// --- class conformance (§3.1) ---------------------------------------
	for _, v := range []core.ResourceView{grant, pim, projects} {
		if err := reg.Conforms(v, v.Class(), 0); err != nil {
			log.Fatalf("conformance: %v", err)
		}
		fmt.Printf("%-14s conforms to class %q\n", v.Name(), v.Class())
	}
	// Generalization: a latexfile is-a file.
	fmt.Printf("latexfile is-a file: %v\n", reg.IsA(core.ClassLatexFile, core.ClassFile))

	// A deliberately broken view is rejected.
	broken := core.NewView("", core.ClassFile)
	if err := reg.Conforms(broken, core.ClassFile, 0); err != nil {
		fmt.Printf("broken view rejected: %v\n", err)
	}

	// --- graph algorithms over the cyclic graph -------------------------
	n, err := core.CountReachable(projects, core.WalkOptions{MaxDepth: -1})
	if err != nil {
		log.Fatal(err)
	}
	cyc, _ := core.HasCycle(projects, core.WalkOptions{MaxDepth: -1})
	fmt.Printf("\nreachable views from 'Projects': %d (cycle present: %v)\n", n, cyc)
	fmt.Printf("lazy conversion ran %d time(s) during the walk (exactly once)\n", conversions)

	// Indirect relation (→*): the Preliminaries section is reachable
	// from the PIM folder both through the document tree and through
	// the \ref cross edge.
	related, _ := core.IndirectlyRelated(pim, prelim, core.WalkOptions{MaxDepth: -1})
	fmt.Printf("PIM →* Preliminaries: %v\n", related)
	viaRef, _ := core.IndirectlyRelated(ref, prelim, core.WalkOptions{MaxDepth: -1})
	fmt.Printf("ref →* Preliminaries: %v (the graph is not a tree)\n", viaRef)

	// The group invariant of Definition 1 (S ∩ Q = ∅) is checkable.
	if err := core.CheckGroupInvariant(pim.Group(), 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("group invariant S ∩ Q = ∅ holds for every view")
}
