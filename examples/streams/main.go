// Streams and intensional data: the §3.4/§4 features of the iDM paper.
// This example models an email INBOX both ways §4.4.1 describes —
// Option 1 (the finite state window) and Option 2 (the infinite message
// stream) — wires a push-based operator pipeline to the incoming flow
// (§4.4.2 "need to push"), and instantiates an ActiveXML document whose
// service call is computed lazily (§4.3.1).
package main

import (
	"fmt"
	"log"
	"time"

	idm "repro"
	"repro/internal/axml"
	"repro/internal/core"
	"repro/internal/sources/mailplugin"
	"repro/internal/stream"
)

func main() {
	store := idm.NewMailStore()

	// --- Option 2 first: subscribe to the infinite message stream. ----
	plugin := mailplugin.New("email", store, nil)
	defer plugin.Close()
	streamView := plugin.Stream()
	fmt.Printf("stream view class: %s (group sequence finite? %v)\n",
		streamView.Class(), streamView.Group().Seq.Finite())

	// A push pipeline: filter urgent messages into a sliding window.
	broker := stream.NewBroker()
	window := stream.NewWindow(3)
	broker.Subscribe("inbox", stream.Filter(
		func(v core.ResourceView) bool {
			subj, ok := v.Tuple().Get("subject")
			return ok && len(subj.Str) > 0 && subj.Str[0] == '!'
		},
		window,
	))
	// Pump the infinite stream into the broker on a goroutine; the
	// iterator blocks until messages arrive (data-driven processing).
	go func() {
		it := streamView.Group().Seq.Iter()
		for {
			v, err := it.Next()
			if err != nil {
				return
			}
			broker.Publish("inbox", v)
		}
	}()

	// Deliver some messages.
	subjects := []string{"weekly report", "!deadline tomorrow", "lunch?", "!reviews due", "!server down", "newsletter"}
	for _, s := range subjects {
		if _, err := store.Append(&idm.MailMessage{
			Folder: "INBOX", From: "alice@example.org", Subject: s,
			Date: time.Now(), Body: "body of " + s,
		}); err != nil {
			log.Fatal(err)
		}
	}
	waitFor(func() bool { return window.Total() >= 3 })
	fmt.Println("\nurgent-message window (last 3, via push operators):")
	for _, v := range window.Snapshot() {
		subj, _ := v.Tuple().Get("subject")
		fmt.Printf("  %s\n", subj.Str)
	}

	// --- Option 1: the INBOX state is a finite group component. -------
	root, err := plugin.Root()
	if err != nil {
		log.Fatal(err)
	}
	var inbox core.ResourceView
	core.Walk(root, core.WalkOptions{MaxDepth: 1}, func(v core.ResourceView, _ int) error {
		if v.Name() == "INBOX" {
			inbox = v
		}
		return nil
	})
	state, err := core.CollectViews(inbox.Group().Seq, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nINBOX state window (Option 1): %d messages, finite=%v\n",
		len(state), inbox.Group().Seq.Finite())

	// --- ActiveXML: intensional data computed on first access. --------
	services := axml.NewRegistry()
	services.Register("web.server.com/GetDepartments()", func() (string, error) {
		return "<deplist><entry><name>Accounting</name></entry><entry><name>Research</name></entry></deplist>", nil
	})
	dep := axml.NewElement("dep", "web.server.com/GetDepartments()", services, nil)
	fmt.Printf("\nActiveXML element before access: service calls = %d\n",
		services.Calls("web.server.com/GetDepartments()"))
	children, _ := core.CollectViews(dep.Group().Seq, 0)
	fmt.Printf("after requesting the group component: calls = %d, group = ⟨",
		services.Calls("web.server.com/GetDepartments()"))
	for i, c := range children {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(c.Name())
	}
	fmt.Println("⟩")
	names := 0
	core.Walk(dep, core.WalkOptions{MaxDepth: -1}, func(v core.ResourceView, _ int) error {
		if v.Class() == core.ClassXMLText {
			b, _ := core.ReadAllContent(v.Content(), 0)
			fmt.Printf("  department: %s\n", b)
			names++
		}
		return nil
	})
	if names == 0 {
		log.Fatal("service result not expanded")
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(2 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}
