// PIM applications on the platform: the paper's conclusion plans
// "reference reconciliation and clustering on top of the iMeMex
// platform". Because every subsystem is already unified into one
// resource view graph, both applications are short programs over the
// Resource View Manager: reconciliation merges person mentions from the
// contacts relation and from email headers; clustering groups files by
// content similarity.
package main

import (
	"fmt"
	"log"
	"time"

	idm "repro"
	"repro/internal/apps"
	"repro/internal/core"
)

func main() {
	// A small dataspace: an address book relation, an email store, and
	// files including near-duplicate drafts.
	db := idm.NewRelDB("persdb")
	schema := core.Schema{
		{Name: "name", Domain: core.DomainString},
		{Name: "email", Domain: core.DomainString},
	}
	db.CreateRelation("contacts", schema)
	db.Insert("contacts", core.Tuple{core.String("Alice Average"), core.String("alice@example.org")})
	db.Insert("contacts", core.Tuple{core.String("Bob Builder"), core.String("bob@example.org")})

	store := idm.NewMailStore()
	for _, m := range []*idm.MailMessage{
		{Folder: "INBOX", From: "alice@example.org", To: []string{"me@example.org"},
			Subject: "status", Body: "weekly status", Date: time.Now()},
		{Folder: "INBOX", From: "Alice Average <alice@gmail.example>", To: []string{"bob@example.org"},
			Subject: "from my other account", Body: "hi bob", Date: time.Now()},
		{Folder: "INBOX", From: "carol@example.org", To: []string{"me@example.org"},
			Subject: "intro", Body: "hello", Date: time.Now()},
	} {
		if _, err := store.Append(m); err != nil {
			log.Fatal(err)
		}
	}

	fs := idm.NewFileSystem()
	fs.MkdirAll("/papers")
	common := "the unified dataspace model removes the boundary between inside and outside files "
	fs.WriteFile("/papers/draft-v1.txt", []byte(common+"early draft"))
	fs.WriteFile("/papers/draft-v2.txt", []byte(common+"revised draft with fixes"))
	fs.WriteFile("/papers/camera-ready.txt", []byte(common+"camera ready version"))
	fs.WriteFile("/papers/reviews.txt", []byte("reviewer one liked it reviewer two wants changes"))

	sys := idm.Open(idm.Config{})
	for _, err := range []error{
		sys.AddRelational("reldb", db),
		sys.AddMail("email", store),
		sys.AddFileSystem("filesystem", fs),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.Index(); err != nil {
		log.Fatal(err)
	}

	// --- Reference reconciliation -------------------------------------
	fmt.Println("reference reconciliation (contacts relation ⋈ email headers):")
	for _, e := range apps.Reconcile(sys.Manager()) {
		if len(e.Mentions) < 2 {
			continue
		}
		fmt.Printf("  %s\n", e.CanonicalName)
		fmt.Printf("    addresses: %v\n", e.Emails)
		for _, mm := range e.Mentions {
			fmt.Printf("    mention in %-14s (%s)\n", mm.Where, sys.Path(mm.OID))
		}
	}

	// --- Content clustering --------------------------------------------
	fmt.Println("\ncontent clustering (files by token similarity):")
	for _, c := range apps.ClusterContent(sys.Manager(), apps.DefaultClusterOptions()) {
		if len(c.Members) < 2 {
			continue
		}
		fmt.Printf("  cluster %q:\n", c.Label)
		for _, oid := range c.Members {
			fmt.Printf("    %s\n", sys.Path(oid))
		}
	}
}
