package idm_test

import (
	"bytes"
	"testing"

	idm "repro"
)

func TestCatalogPersistenceStableOIDs(t *testing.T) {
	d := idm.GenerateDataset(idm.DatasetConfig{Scale: 0.01, Seed: 3})
	sys, err := idm.OpenDataset(d, idm.Config{Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Index(); err != nil {
		t.Fatal(err)
	}
	before, err := sys.Query(`//vldb2006.tex`)
	if err != nil || before.Count() == 0 {
		t.Fatalf("query: %v (%d)", err, before.Count())
	}

	var buf bytes.Buffer
	if err := sys.SaveCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := idm.OpenWithCatalog(idm.Config{Now: fixedNow}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != sys.Count() {
		t.Errorf("restored count %d != %d", restored.Count(), sys.Count())
	}
	// Re-attach the same sources and re-index: OIDs stay stable.
	sys2, err := idm.OpenDataset(d, idm.Config{Now: fixedNow})
	_ = sys2 // OpenDataset on a fresh System is the control; use restored for the assertion
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.AddFileSystem("filesystem", d.FS); err != nil {
		t.Fatal(err)
	}
	if err := restored.AddMail("email", d.Mail); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Index(); err != nil {
		t.Fatal(err)
	}
	after, err := restored.Query(`//vldb2006.tex`)
	if err != nil || after.Count() != before.Count() {
		t.Fatalf("after restore: %v (%d vs %d)", err, after.Count(), before.Count())
	}
	for i := range before.Items {
		if before.Items[i].OID != after.Items[i].OID {
			t.Errorf("OID changed across restart: %d → %d", before.Items[i].OID, after.Items[i].OID)
		}
	}
}

func TestOpenWithCatalogCorrupt(t *testing.T) {
	if _, err := idm.OpenWithCatalog(idm.Config{}, bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("corrupt catalog accepted")
	}
}

func TestVersioningFacade(t *testing.T) {
	fs := idm.NewFileSystem()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/a.txt", []byte("one"))
	sys := idm.Open(idm.Config{Now: fixedNow})
	sys.AddFileSystem("filesystem", fs)
	sys.Index()
	v := sys.Version()
	if v == 0 {
		t.Fatal("no versions after index")
	}
	fs.WriteFile("/d/b.txt", []byte("two"))
	fs.Remove("/d/a.txt")
	sys.Index()
	changes := sys.Changes(v)
	kinds := map[string]int{}
	for _, c := range changes {
		kinds[c.Kind.String()]++
	}
	if kinds["added"] != 1 || kinds["removed"] != 1 {
		t.Errorf("changes = %v (%+v)", kinds, changes)
	}
}

func TestLineageFacadeAcrossEmail(t *testing.T) {
	sys := openIndexed(t)
	// A figure inside a .tex attachment of an email message: lineage
	// should pass through the converter, the attachment and the message.
	res, err := sys.Query(`//email//[class="figure"]`)
	if err != nil || res.Count() == 0 {
		// The email source root is named "email".
		t.Fatalf("figure in email: %v (%d)", err, res.Count())
	}
	steps, err := sys.Lineage(res.Items[0].OID)
	if err != nil {
		t.Fatal(err)
	}
	var sawConverter, sawAttachment, sawMessage bool
	for _, s := range steps {
		if s.Relation == "derived-by latex2idm" {
			sawConverter = true
		}
		if s.Class == "attachment" {
			sawAttachment = true
		}
		if s.Class == "emailmessage" {
			sawMessage = true
		}
	}
	if !sawConverter || !sawAttachment || !sawMessage {
		t.Errorf("lineage misses hops (converter=%v attachment=%v message=%v): %+v",
			sawConverter, sawAttachment, sawMessage, steps)
	}
}

func TestRankedQueryOnDataset(t *testing.T) {
	sys := openIndexed(t)
	res, err := sys.QueryRanked(`"database"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != res.Count() || res.Count() == 0 {
		t.Fatalf("scores=%d count=%d", len(res.Scores), res.Count())
	}
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i] > res.Scores[i-1] {
			t.Fatalf("scores not descending at %d: %v > %v", i, res.Scores[i], res.Scores[i-1])
		}
	}
	if res.Scores[0] < 2 {
		t.Errorf("top score = %v, expected a multi-occurrence document first", res.Scores[0])
	}
}
