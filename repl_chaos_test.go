package idm_test

import (
	"errors"
	"flag"
	"fmt"
	"testing"

	idm "repro"
	"repro/internal/fault"
	"repro/internal/repl"
)

// chaosSeed seeds the chaos fault injector; the whole fault schedule —
// which shipments are dropped, duplicated, reordered or torn — replays
// deterministically for a given seed (make repl-chaos pins seed 1).
var chaosSeed = flag.Int64("chaos-seed", 1, "seed for the replication chaos schedule")

// chaosCatchUp pulls until converged, tolerating rejected batches (the
// follower's remedy for a mutated shipment is simply to re-pull).
func chaosCatchUp(t *testing.T, rep *idm.Replica, maxPulls int) (rejected int) {
	t.Helper()
	for i := 0; i < maxPulls; i++ {
		n, err := rep.Pull()
		if errors.Is(err, idm.ErrBadShipment) {
			rejected++
			continue
		}
		if err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
		if n == 0 && rep.Lag() == 0 {
			return rejected
		}
	}
	t.Fatalf("no convergence after %d pulls (lag %d, %d rejected)", maxPulls, rep.Lag(), rejected)
	return rejected
}

// TestReplChaos drives replication through a hostile transport: each
// fault point mutates shipments (drop a frame, duplicate a range,
// reorder frames, tear the tail) with the armed probability, and the
// follower must reject every invalid batch wholesale and still converge
// to the leader's exact state by re-pulling. The "dup" lane ships honest
// overlapping batches instead, exercising the apply path's idempotency.
func TestReplChaos(t *testing.T) {
	lanes := []struct {
		name   string
		points []string
	}{
		{"drop", []string{repl.FaultShipDrop}},
		{"dup", []string{repl.FaultShipDup}},
		{"reorder", []string{repl.FaultShipReorder}},
		{"torn", []string{repl.FaultShipTorn}},
		{"all", []string{repl.FaultShipDrop, repl.FaultShipDup, repl.FaultShipReorder, repl.FaultShipTorn}},
	}
	for _, lane := range lanes {
		t.Run(lane.name, func(t *testing.T) {
			leaderSys, _ := durableLeader(t)
			leader := leaderSys.ReplicationLeader()
			leader.SetMaxBatch(2) // many batches per catch-up: more chaos surface
			want := leaderSys.StateDigest()

			inj := fault.New(*chaosSeed)
			for _, p := range lane.points {
				inj.Add(fault.Rule{Point: p, Kind: fault.Error, P: 0.4})
			}
			chaos := &idm.ReplChaosTransport{
				Inner:  &idm.ReplWireTransport{Inner: leader},
				Faults: inj,
			}
			rep, err := idm.OpenReplica(t.TempDir(), chaos, idm.Config{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer rep.Close()

			rejected := chaosCatchUp(t, rep, 500)
			if got := rep.StateDigest(); got != want {
				t.Fatalf("chaos catch-up diverged\n got %s\nwant %s", got, want)
			}
			fired := 0
			for _, p := range lane.points {
				fired += inj.Fired(p)
			}
			if fired == 0 {
				t.Fatalf("chaos lane %s never fired (seed %d)", lane.name, *chaosSeed)
			}
			// Every mutation except dup yields an invalid batch the
			// follower must have rejected at least once.
			if lane.name != "dup" && rejected == 0 {
				t.Fatalf("lane %s fired %d times but nothing was rejected", lane.name, fired)
			}
			if lane.name == "dup" && rejected != 0 {
				t.Fatalf("dup lane produced %d rejections; overlaps should be legal", rejected)
			}
			t.Logf("lane %s: %d faults fired, %d batches rejected, converged", lane.name, fired, rejected)
		})
	}
}

// TestReplChaosDeterministic replays the same seed twice and requires an
// identical fault schedule — the property that makes a chaos failure
// reproducible from its seed alone.
func TestReplChaosDeterministic(t *testing.T) {
	run := func() (fired [2]int, digest string) {
		leaderSys, _ := durableLeader(t)
		leader := leaderSys.ReplicationLeader()
		leader.SetMaxBatch(2)
		inj := fault.New(*chaosSeed)
		inj.Add(fault.Rule{Point: repl.FaultShipDrop, Kind: fault.Error, P: 0.3})
		inj.Add(fault.Rule{Point: repl.FaultShipTorn, Kind: fault.Error, P: 0.3})
		chaos := &idm.ReplChaosTransport{Inner: leader, Faults: inj}
		rep, err := idm.OpenReplica(t.TempDir(), chaos, idm.Config{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		chaosCatchUp(t, rep, 500)
		return [2]int{inj.Fired(repl.FaultShipDrop), inj.Fired(repl.FaultShipTorn)}, rep.StateDigest()
	}
	f1, d1 := run()
	f2, d2 := run()
	if f1 != f2 {
		t.Fatalf("same seed, different fault schedules: %v vs %v", f1, f2)
	}
	if d1 != d2 {
		t.Fatal("same seed, different converged digests")
	}
}

// TestReplicaStaleness pins the staleness contract: a lagging replica
// flags every answer Stale with a "replication lag N" source entry, and
// catching up clears it.
func TestReplicaStaleness(t *testing.T) {
	leaderSys, _ := durableLeader(t)
	leader := leaderSys.ReplicationLeader()
	leader.SetMaxBatch(5)

	rep, err := idm.OpenReplica(t.TempDir(), leader, idm.Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	// One capped pull: behind the advertised leader LSN.
	if _, err := rep.Pull(); err != nil {
		t.Fatal(err)
	}
	lag := rep.Lag()
	if lag == 0 {
		t.Fatal("capped pull left no lag")
	}
	res, err := rep.Query(`//*`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stale {
		t.Fatal("lagging replica answered without Stale")
	}
	wantTag := fmt.Sprintf("replication lag %d", lag)
	found := false
	for _, s := range res.StaleSources {
		if s == wantTag {
			found = true
		}
	}
	if !found {
		t.Fatalf("StaleSources %v missing %q", res.StaleSources, wantTag)
	}
	if err := rep.CatchUp(); err != nil {
		t.Fatal(err)
	}
	res, err = rep.Query(`//*`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale {
		t.Fatalf("caught-up replica still stale: %v", res.StaleSources)
	}
}
