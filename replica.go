package idm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/store"
)

// This file is the facade over internal/repl: WAL-shipping read
// replicas — the first rung of the "networks of P2P iMeMex instances"
// the paper's conclusion plans. A durable System acts as leader
// (ReplicationLeader); a Replica tails its WAL over a Transport,
// replays every record through the rvm apply path, and serves read-only
// queries — including as a lag-aware Peer in a Federation. See
// docs/REPLICATION.md.

// Replication type aliases, following the facade's alias pattern.
type (
	// ReplLeader ships a durable store's WAL; *System yields one via
	// ReplicationLeader.
	ReplLeader = repl.Leader
	// ReplTransport moves batches from leader to follower.
	ReplTransport = repl.Transport
	// ReplBatch is one shipment (incremental frames or full state).
	ReplBatch = repl.Batch
	// ReplWireTransport round-trips shipments through the wire encoding.
	ReplWireTransport = repl.WireTransport
	// ReplChaosTransport mutates shipments per armed fault rules.
	ReplChaosTransport = repl.ChaosTransport
)

// ErrBadShipment marks a replication batch the follower rejected
// wholesale; re-pulling retries.
var ErrBadShipment = repl.ErrBadBatch

// ReplicationLeader returns a WAL-shipping leader over this System's
// durable store, or nil for an in-memory System (there is no log to
// ship).
func (s *System) ReplicationLeader() *ReplLeader {
	if s.store == nil {
		return nil
	}
	return repl.NewLeader(s.store)
}

// Replica is a read-only follower: a full System (catalog, indexes,
// group replica, query engine) fed exclusively by shipped WAL records
// instead of local sources. Queries on a lagging replica are flagged
// Stale with a "replication lag" entry in StaleSources — the same
// staleness contract degraded sources use — so federated scatter-gather
// surfaces follower lag without special cases.
//
// A Replica is safe for concurrent use: queries take a read lock, and
// Pull takes the write lock (a full-state reset swaps every index, which
// must exclude readers; incremental applies just ride along).
type Replica struct {
	mu  sync.RWMutex
	sys *System
	fl  *repl.Follower
	t   repl.Transport
}

var (
	_ Peer       = (*Replica)(nil)
	_ TracedPeer = (*Replica)(nil)
)

// replicaApplier adapts the follower's record stream to the manager's
// replay path.
type replicaApplier struct{ r *Replica }

func (a replicaApplier) Apply(rec store.Record) error {
	return a.r.sys.mgr.ApplyRecord(rec)
}

func (a replicaApplier) Reset(st *store.State) error {
	a.r.sys.mgr.ResetFromState(st)
	return nil
}

// OpenReplica opens (creating if needed) a follower directory and
// builds a read-only System from its recovered state: the shipped
// records already made durable locally are replayed, the catalog and
// indexes rebuilt, and the transport attached for subsequent pulls.
// cfg tunes the replica's query engine exactly like Open's; DataDir is
// ignored (the follower keeps its own durability under dir).
func OpenReplica(dir string, t ReplTransport, cfg Config) (*Replica, error) {
	if t == nil {
		return nil, fmt.Errorf("idm: replica needs a transport")
	}
	fl, _, err := repl.OpenFollower(dir, repl.FollowerOptions{Faults: cfg.Faults})
	if err != nil {
		return nil, err
	}
	cfg.DataDir = ""
	state := fl.State()
	cat := catalog.Rebuild(state.NextOID, state.Entries())
	sys := open(cfg, cat, nil, nil)
	sys.mgr.RestoreFromState(state)
	r := &Replica{sys: sys, fl: fl, t: t}
	fl.SetApplier(replicaApplier{r: r})
	return r, nil
}

// Pull ships and applies one batch from the leader, returning how many
// records were newly applied. Rejected batches return ErrBadShipment
// (nothing was applied); an injected crash leaves the replica dead
// until reopened, like a killed process.
func (r *Replica) Pull() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fl.Pull(r.t)
}

// CatchUp pulls until the replica has applied everything the leader
// advertises.
func (r *Replica) CatchUp() error {
	for {
		n, err := r.Pull()
		if err != nil {
			return err
		}
		if n == 0 {
			if lag := r.fl.Lag(); lag > 0 {
				return fmt.Errorf("idm: replica stalled %d LSNs behind leader", lag)
			}
			return nil
		}
	}
}

// StartTailing pulls on every interval until the returned stop function
// is called; pull errors are logged and retried on the next tick
// (transient rejections heal themselves, a dead follower stays dead).
func (r *Replica) StartTailing(interval time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
				if _, err := r.Pull(); err != nil {
					obs.Logger("repl").Warn("tail pull failed", "err", err)
				}
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}
}

// staleTag renders the StaleSources entry a lagging replica attaches.
func staleTag(lag uint64) string { return fmt.Sprintf("replication lag %d", lag) }

// flagLag copies res (cached results are shared; never mutate them) and
// marks it stale when the replica lags its leader.
func (r *Replica) flagLag(res *Result) *Result {
	lag := r.fl.Lag()
	if lag == 0 {
		return res
	}
	cp := *res
	cp.Stale = true
	cp.StaleSources = append(append([]string(nil), res.StaleSources...), staleTag(lag))
	return &cp
}

// Query evaluates q against the replica's indexes. Results carry
// Stale=true (with a "replication lag N" StaleSources entry) whenever
// the replica has not applied everything the leader last advertised.
func (r *Replica) Query(q string) (*Result, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	res, err := r.sys.Query(q)
	if err != nil {
		return nil, err
	}
	return r.flagLag(res), nil
}

// Trace is Query with the engine's span trace, so a federated query
// over replicas still renders one merged trace.
func (r *Replica) Trace(q string) (*Result, *obs.Trace, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	res, tr, err := r.sys.Trace(q)
	if err != nil {
		return nil, tr, err
	}
	return r.flagLag(res), tr, nil
}

// AppliedLSN returns the replica's durable applied position.
func (r *Replica) AppliedLSN() uint64 { return r.fl.AppliedLSN() }

// LeaderLSN returns the leader position last advertised to the replica.
func (r *Replica) LeaderLSN() uint64 { return r.fl.LeaderLSN() }

// Lag returns how many LSNs the replica trails the advertised leader
// position.
func (r *Replica) Lag() uint64 { return r.fl.Lag() }

// StateDigest returns the digest of the replica's durable shadow state;
// it equals the leader's StateDigest exactly when fully caught up.
func (r *Replica) StateDigest() string { return r.fl.Digest() }

// System exposes the replica's underlying read-only System (metrics,
// sizes, EXPLAIN); callers must not add sources to it.
func (r *Replica) System() *System { return r.sys }

// Close closes the replica's local WAL.
func (r *Replica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fl.Close()
}
