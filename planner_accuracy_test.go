package idm_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/iql"
)

// Cardinality-accuracy bounds. Estimates are upper bounds built from
// index metadata, so the two directions have different contracts:
//
//   - Over-estimation is expected (a wildcard-name step carries no
//     index constraint and estimates at the full view count) but must
//     stay within a fixed symmetric ratio, so gross estimator
//     regressions fail loudly.
//   - Under-estimation must not happen at all for join-free queries —
//     every result of a path/predicate/union matches the estimated
//     constraint set. Joins may legitimately exceed their bound
//     (many-to-many fan-out), within a factor.
const (
	accuracyOverBound      = 512.0
	accuracyJoinUnderBound = 16.0
)

// estRatio is the smoothed ratio a/b; the +8 smoothing keeps tiny
// cardinalities (est 20 vs actual 1) from reading as gross errors.
func estRatio(a, b int64) float64 { return float64(a+8) / float64(b+8) }

// hasJoinNode reports whether the query contains a join anywhere (the
// only node whose result can exceed its cardinality estimate).
func hasJoinNode(q iql.Query) bool {
	switch x := q.(type) {
	case *iql.JoinQuery:
		return true
	case *iql.UnionQuery:
		for _, a := range x.Args {
			if hasJoinNode(a) {
				return true
			}
		}
	}
	return false
}

type estSample struct {
	query    string
	est      int64
	actual   int64
	severity float64
	reason   string
}

// TestPlannerCardinalityAccuracy runs the 8 paper queries plus 200
// grammar-generated queries on the evaluation dataset under the
// adaptive planner and checks every recorded row estimate against the
// actual result cardinality. On failure it prints the worst offenders,
// most severe first.
func TestPlannerCardinalityAccuracy(t *testing.T) {
	s, err := experiments.NewSetup(0.05, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Index(); err != nil {
		t.Fatal(err)
	}
	e := s.AdaptiveEngine(1)

	var queries []string
	for _, q := range experiments.PaperQueries() {
		queries = append(queries, q.IQL)
	}
	g := iql.NewGen(20060912, iql.DefaultVocab())
	for len(queries) < 8+200 {
		queries = append(queries, g.Query())
	}

	var offenders []estSample
	evaluated := 0
	for _, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			// Generated queries may legitimately exceed the expansion
			// budget; accuracy is only defined for completed runs.
			continue
		}
		evaluated++
		est := res.Plan.EstimatedRows
		if est < 0 {
			t.Fatalf("adaptive run of %q recorded no estimate", q)
		}
		actual := int64(res.Count())
		ast, err := iql.ParseWith(q, iql.ParseOptions{Now: experiments.Clock})
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		joinQuery := hasJoinNode(ast)
		switch {
		case estRatio(est, actual) > accuracyOverBound:
			offenders = append(offenders, estSample{q, est, actual, estRatio(est, actual),
				fmt.Sprintf("over-estimate beyond %gx", accuracyOverBound)})
		case !joinQuery && actual > est:
			offenders = append(offenders, estSample{q, est, actual, estRatio(actual, est),
				"under-estimate on a join-free query (estimate must be an upper bound)"})
		case joinQuery && estRatio(actual, est) > accuracyJoinUnderBound:
			offenders = append(offenders, estSample{q, est, actual, estRatio(actual, est),
				fmt.Sprintf("join under-estimate beyond %gx", accuracyJoinUnderBound)})
		}
	}
	if evaluated < len(queries)*9/10 {
		t.Fatalf("only %d/%d queries evaluated cleanly; accuracy sample too small", evaluated, len(queries))
	}
	if len(offenders) > 0 {
		sort.Slice(offenders, func(i, j int) bool { return offenders[i].severity > offenders[j].severity })
		if len(offenders) > 10 {
			offenders = offenders[:10]
		}
		for _, o := range offenders {
			t.Errorf("estimate %d, actual %d (severity %.1fx): %s\n  query: %s",
				o.est, o.actual, o.severity, o.reason, o.query)
		}
		t.Fatalf("%d cardinality estimates out of bounds (worst above)", len(offenders))
	}
}
